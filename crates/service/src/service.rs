//! The service: builder, admission queue, and dispatcher threads.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use st_core::engine::{SpanningAlgorithm, Workspace};
use st_core::{BaderCong, RuntimeConfig};
use st_graph::CsrGraph;
use st_obs::{JobEventKind, JobOutcomeKind, PoolGauges, PoolSnapshot, TraceId};
use st_smp::{CancelToken, ExecutorPool};

use crate::catalog::{CacheKey, GraphCatalog, ResultCache};
use crate::job::{JobError, JobHandle, JobState, Priority};
use crate::sizing::preferred_width;
use crate::spec::JobSpec;
use crate::telemetry::{Telemetry, DEFAULT_JOURNAL_CAPACITY, DEFAULT_SLOW_JOB_MS};

/// An algorithm a tenant can submit: the engine trait plus the thread
/// bounds the dispatcher needs to carry it across the queue.
type BoxedAlgorithm = Box<dyn SpanningAlgorithm + Send + Sync>;

/// One admitted job, queued until a dispatcher picks it up.
struct QueuedJob {
    graph: Arc<CsrGraph>,
    algo: BoxedAlgorithm,
    state: Arc<JobState>,
    submitted_at: Instant,
    /// Explicit width request; `None` = let the sizing oracle decide.
    preferred_p: Option<usize>,
    /// Admission lane the job waits in (for per-lane gauge accounting).
    lane: usize,
    /// The job's trace id (same id as `state.trace`, duplicated so the
    /// dispatcher never locks the state just to journal an event).
    trace: TraceId,
    /// Bounded algorithm label for the per-algorithm histograms.
    algo_label: &'static str,
    /// When the job came through the catalog-addressed path: the key to
    /// publish its forest under on completion.
    cache_slot: Option<CacheKey>,
}

/// The bounded, priority-laned admission queue.
struct Admission {
    lanes: [VecDeque<QueuedJob>; Priority::LANES],
    len: usize,
    shutdown: bool,
}

impl Admission {
    fn pop(&mut self) -> Option<QueuedJob> {
        for lane in &mut self.lanes {
            if let Some(job) = lane.pop_front() {
                self.len -= 1;
                return Some(job);
            }
        }
        None
    }
}

/// State shared by submitters and dispatchers.
struct Shared {
    queue: Mutex<Admission>,
    /// Signals submitters blocked on a full queue.
    space: Condvar,
    /// Signals dispatchers waiting for work.
    work: Condvar,
    capacity: usize,
    gauges: PoolGauges,
    pool: ExecutorPool,
    catalog: Arc<GraphCatalog>,
    cache: ResultCache,
    telemetry: Telemetry,
}

/// Builds a [`Service`]; obtained from [`Service::builder`].
///
/// Unset knobs fall back to the `ST_SERVICE_TEAMS` /
/// `ST_SERVICE_QUEUE_CAP` environment variables (via
/// [`RuntimeConfig::from_env`], so malformed values abort loudly), then
/// to a machine-derived default layout.
#[derive(Debug, Default)]
pub struct ServiceBuilder {
    teams: Option<Vec<usize>>,
    queue_capacity: Option<usize>,
    catalog: Option<Arc<GraphCatalog>>,
    result_cache_capacity: Option<usize>,
    journal_capacity: Option<usize>,
    slow_job_threshold: Option<Duration>,
}

impl ServiceBuilder {
    /// Sets the pool's team widths, e.g. `[4, 2, 2]` for one 4-wide and
    /// two 2-wide persistent teams.
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics if the list is empty or contains a
    /// zero.
    pub fn teams(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.teams = Some(sizes.into_iter().collect());
        self
    }

    /// Sets the admission-queue capacity: how many jobs may wait before
    /// `submit` blocks and `try_submit` reports
    /// [`JobError::Backpressure`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics on zero.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Attaches an existing [`GraphCatalog`] (e.g. one pre-loaded from
    /// disk, or shared with another service). By default the service
    /// creates its own empty catalog.
    pub fn catalog(mut self, catalog: Arc<GraphCatalog>) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Sets the result-cache capacity in entries; 0 disables caching.
    /// Falls back to `ST_RESULT_CACHE_CAP`, then to
    /// [`DEFAULT_RESULT_CACHE_CAPACITY`].
    pub fn result_cache_capacity(mut self, cap: usize) -> Self {
        self.result_cache_capacity = Some(cap);
        self
    }

    /// Sets the event-journal capacity (lifecycle events retained for
    /// `/debug/journal`, drop-oldest). Falls back to `ST_JOURNAL_CAP`,
    /// then to [`DEFAULT_JOURNAL_CAPACITY`](crate::telemetry::DEFAULT_JOURNAL_CAPACITY).
    pub fn journal_capacity(mut self, cap: usize) -> Self {
        self.journal_capacity = Some(cap);
        self
    }

    /// Sets the slow-job threshold: a completed job whose wall latency
    /// (queue + exec) meets it has its full [`st_obs::JobMetrics`] kept
    /// in the slow-job log. Falls back to `ST_SLOW_JOB_MS`, then to
    /// [`DEFAULT_SLOW_JOB_MS`](crate::telemetry::DEFAULT_SLOW_JOB_MS).
    pub fn slow_job_threshold(mut self, d: Duration) -> Self {
        self.slow_job_threshold = Some(d);
        self
    }

    /// Spawns the teams and dispatcher threads and opens the service.
    pub fn build(self) -> Service {
        let env = RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
        let teams = self
            .teams
            .or(env.service_teams)
            .unwrap_or_else(default_teams);
        assert!(
            !teams.is_empty() && teams.iter().all(|&p| p > 0),
            "team widths must be a non-empty list of sizes >= 1, got {teams:?}"
        );
        let capacity = self
            .queue_capacity
            .or(env.service_queue_capacity)
            .unwrap_or(DEFAULT_QUEUE_CAPACITY);
        assert!(capacity > 0, "queue capacity must be >= 1");
        let cache_capacity = self
            .result_cache_capacity
            .or(env.result_cache_capacity)
            .unwrap_or(DEFAULT_RESULT_CACHE_CAPACITY);
        let journal_capacity = self
            .journal_capacity
            .or(env.journal_capacity)
            .unwrap_or(DEFAULT_JOURNAL_CAPACITY);
        let slow_threshold_ns = self
            .slow_job_threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .or(env.slow_job_ms.map(|ms| ms.saturating_mul(1_000_000)))
            .unwrap_or(DEFAULT_SLOW_JOB_MS * 1_000_000);

        let num_teams = teams.len();
        let shared = Arc::new(Shared {
            queue: Mutex::new(Admission {
                lanes: Default::default(),
                len: 0,
                shutdown: false,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            capacity,
            gauges: PoolGauges::new(),
            pool: ExecutorPool::new(teams),
            catalog: self.catalog.unwrap_or_default(),
            cache: ResultCache::new(cache_capacity),
            telemetry: Telemetry::new(journal_capacity, slow_threshold_ns),
        });
        // One dispatcher per team: enough to keep every team busy, and a
        // dispatcher's leased width still adapts per job via best-fit.
        let dispatchers = (0..num_teams)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("st-service-dispatch-{i}"))
                    .spawn(move || dispatcher(&shared))
                    .expect("spawning a dispatcher thread")
            })
            .collect();
        Service {
            shared,
            dispatchers,
        }
    }
}

/// Default admission-queue capacity when neither the builder nor the
/// environment sets one.
const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default result-cache capacity (entries) when neither the builder nor
/// `ST_RESULT_CACHE_CAP` sets one.
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 64;

/// Default pool layout: half the cores in one wide team for big jobs,
/// a quarter in each of two narrower teams for small ones (e.g. 8 cores
/// → `[4, 2, 2]`).
fn default_teams() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let half = (cores / 2).max(1);
    let quarter = (cores / 4).max(1);
    vec![half, quarter, quarter]
}

/// A multi-tenant spanning-forest job service.
///
/// Owns a sharded pool of persistent [`Executor`](st_smp::Executor)
/// teams and a bounded, priority-laned admission queue. Tenants submit
/// jobs through the [`job`](Self::job) builder and observe them through
/// [`JobHandle`]s; dispatcher threads lease the best-fitting team per
/// job (adaptively sized by the §3 cost model), enforce deadlines and
/// cooperative cancellation, and isolate panics so one tenant can never
/// take the pool down.
///
/// ```
/// use std::sync::Arc;
/// use st_graph::gen;
/// use st_service::Service;
///
/// let svc = Service::builder().teams([2, 1]).queue_capacity(8).build();
/// let g = Arc::new(gen::torus2d(16, 16));
/// let handle = svc.job(&g).submit().expect("service is open");
/// let forest = handle.wait().expect("no deadline, no cancel");
/// assert_eq!(forest.num_trees(), 1);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("teams", &self.shared.pool.team_sizes())
            .field("queue_capacity", &self.shared.capacity)
            .finish()
    }
}

impl Service {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The pool's team widths, widest first.
    pub fn team_sizes(&self) -> &[usize] {
        self.shared.pool.team_sizes()
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A point-in-time copy of the pool gauges (submissions, outcomes,
    /// per-lane queue depth, busy teams, cache hit rates, queue/exec
    /// time totals).
    pub fn snapshot(&self) -> PoolSnapshot {
        self.shared.gauges.snapshot()
    }

    /// The full observability page in Prometheus text exposition —
    /// pool gauges, SLO series, and latency histograms. Served by the
    /// TCP front-end's `METRICS` op and the HTTP `/metrics` endpoint.
    pub fn render_metrics(&self) -> String {
        st_obs::render_service_prometheus(
            &self.snapshot(),
            &self.shared.telemetry.histogram_families(),
        )
    }

    /// The service's telemetry plane: event journal, latency
    /// histograms, in-flight table, slow-job log.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// True while the admission queue accepts submissions (false once
    /// shutdown began). The HTTP `/healthz` endpoint keys off this.
    pub fn is_accepting(&self) -> bool {
        !self.shared.queue.lock().unwrap().shutdown
    }

    /// The service's graph catalog: register/load graphs here, then
    /// address them from [`JobSpec`]s.
    pub fn catalog(&self) -> &Arc<GraphCatalog> {
        &self.shared.catalog
    }

    /// Entries currently held by the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Removes `id` from the catalog and purges its cached results.
    /// In-flight jobs keep their graph `Arc` and finish normally.
    pub fn remove_graph(&self, id: crate::catalog::GraphId) -> bool {
        let removed = self.shared.catalog.remove(id);
        if removed {
            self.shared.cache.purge_graph(id);
        }
        removed
    }

    /// Submits a catalog-addressed job, blocking while the admission
    /// queue is full. A cached result resolves the handle immediately
    /// without queueing ([`Submitted::cached`]).
    pub fn submit_spec(&self, spec: JobSpec) -> Result<Submitted, JobError> {
        self.submit_spec_inner(spec, true)
    }

    /// Submits a catalog-addressed job without blocking: a full queue is
    /// [`JobError::Backpressure`]. Cache hits always succeed — they
    /// never need queue space.
    pub fn try_submit_spec(&self, spec: JobSpec) -> Result<Submitted, JobError> {
        self.submit_spec_inner(spec, false)
    }

    fn submit_spec_inner(&self, spec: JobSpec, block: bool) -> Result<Submitted, JobError> {
        let arrived = Instant::now();
        let (graph, gref) = self
            .shared
            .catalog
            .resolve(spec.graph)
            .ok_or(JobError::UnknownGraph)?;
        let key = CacheKey {
            graph: gref,
            algorithm: spec.algorithm,
            seed: spec.seed,
            processors: spec.processors.unwrap_or(0),
        };
        let token = match spec.deadline {
            Some(d) => CancelToken::with_deadline(arrived + d),
            None => CancelToken::new(),
        };
        // Front-ends may pre-mint the id (the TCP server does, so the
        // wire reply and the journal agree); otherwise mint here.
        let trace = spec.trace.map(TraceId).unwrap_or_else(TraceId::mint);
        let lane = spec.priority.lane();
        let state = JobState::new(token, trace);
        let journal = self.shared.telemetry.journal();
        journal.record_now(
            trace,
            JobEventKind::Submitted,
            Some(lane as u8),
            None,
            Some(spec.algorithm.name().to_owned()),
        );
        // A cache hit completes instantly, so any live deadline is met
        // trivially — but a deadline that is already expired at
        // submission (e.g. Duration::ZERO) must still report
        // DeadlineExceeded, exactly as the executed path would.
        if state.token.is_cancelled() {
            let err = JobError::from_token(&state.token);
            self.shared.gauges.on_submit_unqueued();
            self.shared.gauges.on_finish(err.outcome_kind(), 0, 0);
            journal.record_now(
                trace,
                JobEventKind::Finished,
                Some(lane as u8),
                None,
                Some(outcome_name(err.outcome_kind()).to_owned()),
            );
            state.finish(Err(err));
            return Ok(Submitted {
                handle: JobHandle::new(state),
                cached: false,
            });
        }
        if let Some(forest) = self.shared.cache.get(&key) {
            // Short-circuit: the forest is already known for this exact
            // (graph version, algorithm, seed, width). No queue entry,
            // no team lease — the handle resolves before it is returned.
            // `on_cache_hit` counts the completion under the dedicated
            // cached series; the zero-latency hit stays out of the
            // execution histograms.
            self.shared.gauges.on_cache_hit();
            self.shared
                .telemetry
                .on_cached(trace, lane as u8, elapsed_ns(arrived));
            state.finish(Ok(forest));
            return Ok(Submitted {
                handle: JobHandle::new(state),
                cached: true,
            });
        }
        self.shared.gauges.on_cache_miss();
        let job = QueuedJob {
            graph,
            algo: spec.algorithm.instantiate(spec.seed),
            state: Arc::clone(&state),
            submitted_at: arrived,
            preferred_p: spec.processors,
            lane,
            trace,
            algo_label: spec.algorithm.name(),
            cache_slot: Some(key),
        };
        self.enqueue(job, spec.priority, block)?;
        Ok(Submitted {
            handle: JobHandle::new(state),
            cached: false,
        })
    }

    /// Starts a job submission for `g`. The graph is shared by `Arc` so
    /// many tenants can submit the same graph without copying it.
    pub fn job<'s>(&'s self, g: &Arc<CsrGraph>) -> JobBuilder<'s> {
        JobBuilder {
            service: self,
            graph: Arc::clone(g),
            algo: None,
            deadline: None,
            priority: Priority::Normal,
            preferred_p: None,
        }
    }

    /// Closes the queue and joins the dispatchers. Queued jobs that
    /// never ran resolve to [`JobError::ShuttingDown`]; the running job
    /// on each team completes first. Dropping the service does the same.
    pub fn shutdown(mut self) -> PoolSnapshot {
        self.shutdown_inner();
        self.snapshot()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
    }

    fn enqueue(&self, job: QueuedJob, priority: Priority, block: bool) -> Result<(), JobError> {
        let lane = priority.lane();
        let (trace, algo_label) = (job.trace, job.algo_label);
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if q.shutdown {
                drop(q);
                self.shared.telemetry.journal().record_now(
                    trace,
                    JobEventKind::Finished,
                    Some(lane as u8),
                    None,
                    Some("shutting_down".to_owned()),
                );
                return Err(JobError::ShuttingDown);
            }
            if q.len < self.shared.capacity {
                break;
            }
            if !block {
                self.shared.gauges.on_reject(lane);
                drop(q);
                self.shared.telemetry.journal().record_now(
                    trace,
                    JobEventKind::Finished,
                    Some(lane as u8),
                    None,
                    Some("backpressure".to_owned()),
                );
                return Err(JobError::Backpressure);
            }
            q = self.shared.space.wait(q).unwrap();
        }
        q.lanes[lane].push_back(job);
        q.len += 1;
        self.shared.gauges.on_submit(lane);
        // Journaled while still holding the queue lock: the dispatcher
        // can only pop (and journal `dequeued`) after this lock drops,
        // so a trace's events always read submitted < admitted <
        // dequeued.
        self.shared
            .telemetry
            .on_admitted(trace, lane as u8, algo_label);
        drop(q);
        self.shared.work.notify_one();
        Ok(())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The outcome of a [`JobSpec`] submission.
#[derive(Debug)]
pub struct Submitted {
    /// The job's handle; already resolved when `cached` is true.
    pub handle: JobHandle,
    /// True when the result came from the cache and no job was queued.
    pub cached: bool,
}

impl Submitted {
    /// Unwraps into the handle when the caller does not care about
    /// provenance.
    pub fn into_handle(self) -> JobHandle {
        self.handle
    }
}

/// A pending submission, built by [`Service::job`].
pub struct JobBuilder<'s> {
    service: &'s Service,
    graph: Arc<CsrGraph>,
    algo: Option<BoxedAlgorithm>,
    deadline: Option<Duration>,
    priority: Priority,
    preferred_p: Option<usize>,
}

impl std::fmt::Debug for JobBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobBuilder")
            .field("n", &self.graph.num_vertices())
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl JobBuilder<'_> {
    /// Selects the algorithm (default:
    /// [`BaderCong::with_defaults`](st_core::BaderCong::with_defaults)).
    pub fn algorithm<A: SpanningAlgorithm + Send + Sync + 'static>(mut self, algo: A) -> Self {
        self.algo = Some(Box::new(algo));
        self
    }

    /// Attaches a deadline, measured from submission and covering queue
    /// wait plus execution. A job past its deadline resolves to
    /// [`JobError::DeadlineExceeded`]; a running job stops at its next
    /// cancellation boundary.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the admission priority class (default
    /// [`Priority::Normal`]).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Requests a specific team width, bypassing the sizing oracle. The
    /// pool still best-fits: a busy exact-width team means the closest
    /// idle width serves the job.
    pub fn processors(mut self, p: usize) -> Self {
        self.preferred_p = Some(p);
        self
    }

    /// Submits, blocking while the admission queue is full. Fails only
    /// when the service is shutting down.
    pub fn submit(self) -> Result<JobHandle, JobError> {
        self.enqueue(true)
    }

    /// Submits without blocking: a full queue is
    /// [`JobError::Backpressure`], leaving the caller to shed load or
    /// retry.
    pub fn try_submit(self) -> Result<JobHandle, JobError> {
        self.enqueue(false)
    }

    fn enqueue(self, block: bool) -> Result<JobHandle, JobError> {
        let token = match self.deadline {
            Some(d) => CancelToken::with_deadline(Instant::now() + d),
            None => CancelToken::new(),
        };
        let trace = TraceId::mint();
        let lane = self.priority.lane();
        let state = JobState::new(token, trace);
        let algo = self
            .algo
            .unwrap_or_else(|| Box::new(BaderCong::with_defaults()));
        // Custom algorithms outside the catalog set share one "other"
        // histogram label — the Prometheus series set stays bounded.
        let algo_label = Telemetry::algo_label(algo.name());
        self.service.shared.telemetry.journal().record_now(
            trace,
            JobEventKind::Submitted,
            Some(lane as u8),
            None,
            Some(algo_label.to_owned()),
        );
        let job = QueuedJob {
            graph: self.graph,
            algo,
            state: Arc::clone(&state),
            submitted_at: Instant::now(),
            preferred_p: self.preferred_p,
            lane,
            trace,
            algo_label,
            // Ad-hoc graphs have no catalog identity, so their results
            // cannot be cached or shared.
            cache_slot: None,
        };
        self.service.enqueue(job, self.priority, block)?;
        Ok(JobHandle::new(state))
    }
}

/// One dispatcher thread: pops admitted jobs, leases the best-fitting
/// team, runs the job with cancellation support, and resolves its
/// handle. Each dispatcher keeps a private [`Workspace`] so scratch
/// allocations amortize across the jobs it runs.
fn dispatcher(shared: &Shared) {
    let mut ws = Workspace::new();
    loop {
        let (job, draining) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop() {
                    break (job, q.shutdown);
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        shared.gauges.on_dequeue(job.lane);
        shared.telemetry.journal().record_now(
            job.trace,
            st_obs::JobEventKind::Dequeued,
            Some(job.lane as u8),
            None,
            None,
        );
        shared.space.notify_one();
        if draining {
            let queue_ns = elapsed_ns(job.submitted_at);
            shared
                .gauges
                .on_finish(JobOutcomeKind::Cancelled, queue_ns, 0);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                None,
                "shutting_down",
                queue_ns,
                0,
                false,
                job.algo_label,
                None,
            );
            job.state.finish(Err(JobError::ShuttingDown));
            continue;
        }
        run_job(shared, job, &mut ws);
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Runs one job start to finish: deadline/cancel pre-check, team lease,
/// guarded execution, outcome accounting.
fn run_job(shared: &Shared, job: QueuedJob, ws: &mut Workspace) {
    let queue_ns = elapsed_ns(job.submitted_at);
    // A token that fired while the job sat in the queue: resolve without
    // paying for a lease.
    if job.state.token.is_cancelled() {
        let err = JobError::from_token(&job.state.token);
        shared.gauges.on_finish(err.outcome_kind(), queue_ns, 0);
        shared.telemetry.on_finished(
            job.trace,
            job.lane as u8,
            None,
            outcome_name(err.outcome_kind()),
            queue_ns,
            0,
            false,
            job.algo_label,
            None,
        );
        job.state.finish(Err(err));
        return;
    }

    let preferred = job.preferred_p.unwrap_or_else(|| {
        preferred_width(
            job.graph.num_vertices(),
            job.graph.num_edges(),
            shared.pool.team_sizes(),
        )
    });
    let lease = shared.pool.lease(preferred);
    let team = lease.team_id() as u32;
    shared.gauges.on_team_busy();
    shared.telemetry.on_started(job.trace, job.lane as u8, team);
    ws.note_queue_wait(queue_ns);
    ws.note_trace_id(job.trace.as_u64());
    let started = Instant::now();
    // The guard isolates tenant panics: the lease returns the team on
    // unwind (Executor survives panicked jobs) and the dispatcher
    // replaces its workspace, so the pool keeps serving other tenants.
    let run = catch_unwind(AssertUnwindSafe(|| {
        job.algo.prepare(ws, &job.graph);
        job.algo
            .run_with_cancel(&job.graph, &lease, ws, &job.state.token)
    }));
    drop(lease);
    shared.gauges.on_team_idle();
    let exec_ns = elapsed_ns(started);

    match run {
        Ok(Ok(forest)) => {
            if let Some(key) = job.cache_slot {
                shared.cache.insert(key, forest.clone());
            }
            shared
                .gauges
                .on_finish(JobOutcomeKind::Completed, queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                "completed",
                queue_ns,
                exec_ns,
                true,
                job.algo_label,
                Some(&forest.stats.metrics),
            );
            job.state.finish(Ok(forest));
        }
        Ok(Err(st_core::Cancelled)) => {
            let err = JobError::from_token(&job.state.token);
            shared
                .gauges
                .on_finish(err.outcome_kind(), queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                outcome_name(err.outcome_kind()),
                queue_ns,
                exec_ns,
                false,
                job.algo_label,
                None,
            );
            job.state.finish(Err(err));
        }
        Err(payload) => {
            // Mid-run unwind can leave the workspace's scratch in an
            // arbitrary state; a fresh arena is the safe restart.
            *ws = Workspace::new();
            shared
                .gauges
                .on_finish(JobOutcomeKind::Panicked, queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                "panicked",
                queue_ns,
                exec_ns,
                false,
                job.algo_label,
                None,
            );
            job.state
                .finish(Err(JobError::Panicked(panic_message(&*payload))));
        }
    }
}

/// Stable lowercase outcome names used in journal `finished` events
/// (matching the `outcome` label values of
/// `st_service_jobs_finished_total`).
fn outcome_name(kind: JobOutcomeKind) -> &'static str {
    match kind {
        JobOutcomeKind::Completed => "completed",
        JobOutcomeKind::Cancelled => "cancelled",
        JobOutcomeKind::DeadlineExceeded => "deadline_exceeded",
        JobOutcomeKind::Panicked => "panicked",
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
