//! Catalog-addressed job descriptions.
//!
//! The in-process [`JobBuilder`](crate::JobBuilder) carries a live
//! `Arc<CsrGraph>` and a boxed algorithm — neither of which can cross a
//! wire or key a cache. A [`JobSpec`] is the serializable alternative:
//! it names its graph by [`GraphId`], its algorithm by [`AlgorithmId`],
//! and pins the traversal seed, so the whole description is a handful
//! of integers. The service resolves the id against its
//! [`GraphCatalog`](crate::GraphCatalog) at submission, checks the
//! result cache, and only then instantiates the algorithm.

use std::time::Duration;

use st_core::engine::SpanningAlgorithm;
use st_core::hcs::Hcs;
use st_core::multiroot::Multiroot;
use st_core::sv::{Sv, SvConfig};
use st_core::{BaderCong, Config, TraversalConfig};

use crate::catalog::{GraphId, GraphRef};
use crate::job::Priority;

/// Default traversal seed, matching
/// [`TraversalConfig::default`](st_core::TraversalConfig)'s `0x5eed`.
pub const DEFAULT_SEED: u64 = 0x5eed;

/// The algorithms a catalog-addressed job can name.
///
/// Each variant has a stable wire code ([`code`](Self::code)) used by
/// the TCP protocol and a lowercase name used in logs and listings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// The paper's work-stealing graph traversal (the default).
    #[default]
    BaderCong,
    /// Independent multi-root traversal with graft-based merging.
    Multiroot,
    /// Shiloach–Vishkin graft-and-shortcut.
    Sv,
    /// Hybrid connected-components + spanning structure.
    Hcs,
}

impl AlgorithmId {
    /// Every algorithm, in wire-code order.
    pub const ALL: [AlgorithmId; 4] = [
        AlgorithmId::BaderCong,
        AlgorithmId::Multiroot,
        AlgorithmId::Sv,
        AlgorithmId::Hcs,
    ];

    /// Stable one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            AlgorithmId::BaderCong => 0,
            AlgorithmId::Multiroot => 1,
            AlgorithmId::Sv => 2,
            AlgorithmId::Hcs => 3,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.code() == code)
    }

    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::BaderCong => "bader-cong",
            AlgorithmId::Multiroot => "multiroot",
            AlgorithmId::Sv => "sv",
            AlgorithmId::Hcs => "hcs",
        }
    }

    /// Builds the boxed engine algorithm this id names, with the
    /// traversal RNG seeded at `seed` (ignored by the traversal-free
    /// SV and HCS kernels).
    pub(crate) fn instantiate(self, seed: u64) -> Box<dyn SpanningAlgorithm + Send + Sync> {
        let traversal = TraversalConfig {
            seed,
            ..TraversalConfig::default()
        };
        match self {
            AlgorithmId::BaderCong => Box::new(BaderCong::new(Config {
                traversal,
                ..Config::default()
            })),
            AlgorithmId::Multiroot => Box::new(Multiroot::new(traversal)),
            AlgorithmId::Sv => Box::new(Sv::new(SvConfig::default())),
            AlgorithmId::Hcs => Box::new(Hcs),
        }
    }
}

impl std::fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a job names its graph: by id at whatever version is live when
/// the service admits it, or pinned to one exact published version.
///
/// `From` impls make both spellings ergonomic at the call site —
/// `JobSpec::new(gref)` pins, `JobSpec::new(gref.id)` floats:
///
/// ```
/// use st_service::{GraphId, GraphRef, GraphSel};
/// let gref = GraphRef { id: GraphId(3), version: 2 };
/// assert_eq!(GraphSel::from(gref.id), GraphSel::Latest(GraphId(3)));
/// assert_eq!(GraphSel::from(gref), GraphSel::Pinned(gref));
/// ```
///
/// A pinned submission whose version is no longer live (and whose
/// result is no longer cached) fails with
/// [`JobError::StaleVersion`](crate::JobError::StaleVersion) instead of
/// silently running against different bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphSel {
    /// Resolve to the live version at admission (the pre-batch-update
    /// behavior of raw-id submissions).
    Latest(GraphId),
    /// Require this exact `(id, version)`.
    Pinned(GraphRef),
}

impl GraphSel {
    /// The catalog id, regardless of pinning.
    pub fn id(self) -> GraphId {
        match self {
            GraphSel::Latest(id) => id,
            GraphSel::Pinned(r) => r.id,
        }
    }

    /// The pinned version, when there is one.
    pub fn pinned_version(self) -> Option<u32> {
        match self {
            GraphSel::Latest(_) => None,
            GraphSel::Pinned(r) => Some(r.version),
        }
    }
}

impl From<GraphId> for GraphSel {
    fn from(id: GraphId) -> Self {
        GraphSel::Latest(id)
    }
}

impl From<GraphRef> for GraphSel {
    fn from(r: GraphRef) -> Self {
        GraphSel::Pinned(r)
    }
}

impl std::fmt::Display for GraphSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphSel::Latest(id) => write!(f, "{id}@latest"),
            GraphSel::Pinned(r) => write!(f, "{}@v{}", r.id, r.version),
        }
    }
}

/// A complete, serializable description of one job.
///
/// This is the unit both the TCP front-end and the result cache speak:
/// everything that determines the output (graph, algorithm, seed,
/// requested width) plus the scheduling envelope (priority, deadline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Which catalog graph to span: latest-at-admission or pinned to
    /// an exact version.
    pub graph: GraphSel,
    /// Which algorithm to run.
    pub algorithm: AlgorithmId,
    /// Traversal RNG seed ([`DEFAULT_SEED`] by default).
    pub seed: u64,
    /// Admission priority class.
    pub priority: Priority,
    /// Deadline measured from submission (queue wait + execution).
    pub deadline: Option<Duration>,
    /// Explicit team-width request; `None` lets the sizing oracle pick.
    pub processors: Option<usize>,
    /// Pre-minted trace id, set by front-ends (the TCP server mints one
    /// at `SUBMIT` parse so the wire reply and the journal agree);
    /// `None` lets the service mint one at submission. Not part of the
    /// job's identity — the result cache ignores it.
    pub trace: Option<u64>,
    /// Tenant id the per-tenant queued-job quota is charged against
    /// (0, the default, is the shared anonymous tenant). Not part of
    /// the job's identity — the result cache ignores it.
    pub tenant: u64,
}

impl JobSpec {
    /// A default-algorithm, default-seed, normal-priority spec for
    /// `graph` — a [`GraphId`] (run against the latest version) or a
    /// [`GraphRef`] (pin to that exact version).
    pub fn new(graph: impl Into<GraphSel>) -> Self {
        Self {
            graph: graph.into(),
            algorithm: AlgorithmId::default(),
            seed: DEFAULT_SEED,
            priority: Priority::Normal,
            deadline: None,
            processors: None,
            trace: None,
            tenant: 0,
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algo: AlgorithmId) -> Self {
        self.algorithm = algo;
        self
    }

    /// Sets the traversal seed (distinct seeds cache separately).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the admission priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Attaches a deadline covering queue wait plus execution.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Requests an explicit team width.
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = Some(p);
        self
    }

    /// Attaches a pre-minted trace id (front-ends that must report the
    /// id before the service sees the spec).
    pub fn trace(mut self, trace: u64) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Names the tenant whose queued-job quota this submission is
    /// charged against (0 = the shared anonymous tenant).
    pub fn tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_roundtrip() {
        for algo in AlgorithmId::ALL {
            assert_eq!(AlgorithmId::from_code(algo.code()), Some(algo));
        }
        assert_eq!(AlgorithmId::from_code(200), None);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            AlgorithmId::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), AlgorithmId::ALL.len());
    }

    #[test]
    fn spec_builder_chains() {
        let spec = JobSpec::new(GraphId(3))
            .algorithm(AlgorithmId::Sv)
            .seed(42)
            .priority(Priority::High)
            .deadline(Duration::from_secs(1))
            .processors(4)
            .tenant(17);
        assert_eq!(spec.graph, GraphSel::Latest(GraphId(3)));
        assert_eq!(spec.algorithm, AlgorithmId::Sv);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.deadline, Some(Duration::from_secs(1)));
        assert_eq!(spec.processors, Some(4));
        assert_eq!(spec.tenant, 17);
    }

    #[test]
    fn graph_selectors_pin_or_float() {
        let gref = GraphRef {
            id: GraphId(5),
            version: 3,
        };
        let floating = JobSpec::new(gref.id);
        assert_eq!(floating.graph, GraphSel::Latest(GraphId(5)));
        assert_eq!(floating.graph.id(), GraphId(5));
        assert_eq!(floating.graph.pinned_version(), None);
        let pinned = JobSpec::new(gref);
        assert_eq!(pinned.graph, GraphSel::Pinned(gref));
        assert_eq!(pinned.graph.id(), GraphId(5));
        assert_eq!(pinned.graph.pinned_version(), Some(3));
        assert_eq!(floating.graph.to_string(), "g5@latest");
        assert_eq!(pinned.graph.to_string(), "g5@v3");
    }

    #[test]
    fn defaults_match_the_in_process_path() {
        let spec = JobSpec::new(GraphId(0));
        assert_eq!(spec.algorithm, AlgorithmId::BaderCong);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.deadline, None);
        assert_eq!(spec.processors, None);
        assert_eq!(spec.trace, None);
        assert_eq!(spec.tenant, 0, "anonymous tenant by default");
        assert_eq!(spec.trace(9).trace, Some(9));
    }

    #[test]
    fn every_algorithm_instantiates_and_runs() {
        use st_core::engine::Workspace;
        let g = st_graph::gen::torus2d(8, 8);
        let pool = st_smp::ExecutorPool::new([2]);
        let mut ws = Workspace::new();
        for algo in AlgorithmId::ALL {
            let boxed = algo.instantiate(7);
            boxed.prepare(&mut ws, &g);
            let lease = pool.lease(2);
            let forest = boxed
                .run_with_cancel(&g, &lease, &mut ws, &st_smp::CancelToken::new())
                .unwrap_or_else(|_| panic!("{algo} cancelled unexpectedly"));
            assert_eq!(forest.num_trees(), 1, "{algo}");
            assert!(forest.is_valid_for(&g), "{algo}");
        }
    }
}
