//! Server-side telemetry: latency histograms, the job event journal,
//! the in-flight table, and the slow-job log.
//!
//! [`Telemetry`] is the service's answer to two questions the plain
//! [`PoolGauges`](st_obs::PoolGauges) cannot address: *what is the
//! latency distribution* (per priority lane and per algorithm, as
//! lock-free [`ShardedHistogram`]s the dispatchers record into), and
//! *what happened to this particular job* (the bounded
//! [`EventJournal`] of lifecycle events keyed by [`TraceId`], the
//! in-flight table behind `/debug/jobs`, and the slow-job log that
//! keeps the full [`JobMetrics`](st_obs::JobMetrics) of any job whose
//! wall latency crossed the configured threshold).
//!
//! Everything here is bounded: histograms are fixed arrays, the
//! journal and slow log are drop-oldest rings, and the in-flight table
//! shrinks as jobs finish — telemetry never grows with uptime.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use st_obs::hist::ShardedHistogram;
use st_obs::journal::{escape_json_into, EventJournal, JobEventKind, TraceId};
use st_obs::{HistogramFamily, HistogramSeries, JobMetrics, QUEUE_LANES};

use crate::spec::AlgorithmId;

/// Default journal capacity when neither the builder nor
/// `ST_JOURNAL_CAP` sets one: six events per job means ~1350 jobs of
/// history at ~100 bytes an event.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// Default slow-job threshold (wall latency, queue + exec) when
/// neither the builder nor `ST_SLOW_JOB_MS` sets one.
pub const DEFAULT_SLOW_JOB_MS: u64 = 1000;

/// Slow-job reports retained (drop-oldest).
const SLOW_LOG_CAPACITY: usize = 32;

/// Lowercase lane names, index-aligned with the admission lanes.
pub(crate) const LANE_NAMES: [&str; QUEUE_LANES] = ["high", "normal", "low"];

/// Histogram bucket for jobs whose algorithm is not one of the
/// catalog-addressable [`AlgorithmId`]s (in-process submissions of
/// custom [`SpanningAlgorithm`](st_core::engine::SpanningAlgorithm)s).
const OTHER_ALGORITHM: &str = "other";

/// One entry of the in-flight table: a job that has been admitted but
/// has not resolved yet.
#[derive(Clone, Debug)]
pub struct InflightJob {
    /// The job's trace id.
    pub trace: TraceId,
    /// Admission lane (0 = highest priority).
    pub lane: u8,
    /// Algorithm label (an [`AlgorithmId`] name or `"other"`).
    pub algorithm: &'static str,
    /// `"queued"` until a dispatcher starts the job, then `"running"`.
    pub stage: &'static str,
    /// Executing team id once running.
    pub team: Option<u32>,
    /// Journal-epoch nanoseconds when the job was submitted.
    pub submitted_t_ns: u64,
}

/// One slow-job report: the trace id, the wall latency that tripped
/// the threshold, and the job's full metrics (per-rank counters,
/// phases, spans) as rendered JSON.
#[derive(Clone, Debug)]
pub struct SlowJob {
    /// The job's trace id.
    pub trace: TraceId,
    /// Wall latency (queue + exec) in nanoseconds.
    pub wall_ns: u64,
    /// The complete [`JobMetrics`] report, pre-rendered as JSON.
    pub metrics_json: String,
}

/// The service's telemetry plane: histograms, journal, in-flight
/// table, slow-job log.
pub struct Telemetry {
    /// Lifecycle event ring.
    journal: EventJournal,
    /// Queue-wait latency per admission lane, nanoseconds.
    lane_queue: [ShardedHistogram; QUEUE_LANES],
    /// Execution latency per admission lane, nanoseconds.
    lane_exec: [ShardedHistogram; QUEUE_LANES],
    /// Wall (queue + exec) latency per admission lane, nanoseconds.
    lane_wall: [ShardedHistogram; QUEUE_LANES],
    /// Wall latency of result-cache hits — split out so the zero-cost
    /// hot path cannot understate the real-execution percentiles.
    cached_wall: ShardedHistogram,
    /// Execution latency per algorithm, nanoseconds.
    algo_exec: Vec<(&'static str, ShardedHistogram)>,
    /// Per-batch update latency, incremental-maintenance path.
    update_incremental: ShardedHistogram,
    /// Per-batch update latency, full-recompute fallback path.
    update_recomputed: ShardedHistogram,
    /// Wall-latency threshold past which a job's full metrics are kept.
    slow_threshold_ns: u64,
    /// Recent slow-job reports (drop-oldest ring).
    slow: Mutex<VecDeque<SlowJob>>,
    /// Admitted-but-unresolved jobs, keyed by raw trace id.
    inflight: Mutex<HashMap<u64, InflightJob>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("journal", &self.journal)
            .field("slow_threshold_ns", &self.slow_threshold_ns)
            .finish()
    }
}

/// The number of dispatcher-side recorder shards. Dispatcher threads
/// are the only recorders, one per team; 8 covers every realistic team
/// layout without a cache-padded array per core.
const HIST_SHARDS: usize = 8;

fn lane_histograms() -> [ShardedHistogram; QUEUE_LANES] {
    std::array::from_fn(|_| ShardedHistogram::new(HIST_SHARDS))
}

impl Telemetry {
    /// A fresh telemetry plane with the given journal capacity and
    /// slow-job threshold.
    pub fn new(journal_capacity: usize, slow_threshold_ns: u64) -> Self {
        let algo_exec = AlgorithmId::ALL
            .iter()
            .map(|a| a.name())
            .chain([OTHER_ALGORITHM])
            .map(|name| (name, ShardedHistogram::new(HIST_SHARDS)))
            .collect();
        Self {
            journal: EventJournal::new(journal_capacity),
            lane_queue: lane_histograms(),
            lane_exec: lane_histograms(),
            lane_wall: lane_histograms(),
            cached_wall: ShardedHistogram::new(HIST_SHARDS),
            algo_exec,
            update_incremental: ShardedHistogram::new(HIST_SHARDS),
            update_recomputed: ShardedHistogram::new(HIST_SHARDS),
            slow_threshold_ns,
            slow: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// The label a submission records its algorithm histogram under:
    /// the engine algorithm's name when it matches a catalog
    /// [`AlgorithmId`], `"other"` for custom algorithms (bounded label
    /// set — Prometheus series must not grow with tenant creativity).
    pub(crate) fn algo_label(engine_name: &str) -> &'static str {
        AlgorithmId::ALL
            .iter()
            .map(|a| a.name())
            .find(|n| *n == engine_name)
            .unwrap_or(OTHER_ALGORITHM)
    }

    /// The lifecycle event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The configured slow-job threshold, nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    // ---- lifecycle hooks (called by the service/dispatchers) ----

    /// Records a job entering the in-flight table at admission.
    pub(crate) fn on_admitted(&self, trace: TraceId, lane: u8, algorithm: &'static str) {
        let entry = InflightJob {
            trace,
            lane,
            algorithm,
            stage: "queued",
            team: None,
            submitted_t_ns: self.journal.now_ns(),
        };
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(trace.as_u64(), entry);
        self.journal
            .record_now(trace, JobEventKind::Admitted, Some(lane), None, None);
    }

    /// Marks an in-flight job as running on `team` and journals the
    /// start.
    pub(crate) fn on_started(&self, trace: TraceId, lane: u8, team: u32) {
        if let Some(job) = self
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&trace.as_u64())
        {
            job.stage = "running";
            job.team = Some(team);
        }
        self.journal
            .record_now(trace, JobEventKind::Started, Some(lane), Some(team), None);
    }

    /// Journals the job's end, removes it from the in-flight table,
    /// and — for completed real executions — records the latency
    /// histograms and, past the threshold, the slow-job report.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_finished(
        &self,
        trace: TraceId,
        lane: u8,
        team: Option<u32>,
        outcome: &str,
        queue_ns: u64,
        exec_ns: u64,
        completed: bool,
        algorithm: &'static str,
        metrics: Option<&JobMetrics>,
    ) {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&trace.as_u64());
        if completed {
            let lane_i = (lane as usize).min(QUEUE_LANES - 1);
            self.lane_queue[lane_i].record(queue_ns);
            self.lane_exec[lane_i].record(exec_ns);
            self.lane_wall[lane_i].record(queue_ns + exec_ns);
            if let Some((_, h)) = self.algo_exec.iter().find(|(n, _)| *n == algorithm) {
                h.record(exec_ns);
            }
        }
        if let Some(m) = metrics {
            // A hybrid run that executed any bottom-up round switched
            // direction at least once — worth a discrete event, since
            // switch behavior is exactly what distribution-level
            // telemetry exists to expose.
            let bu = m.get(st_obs::Counter::RoundsBottomUp);
            if bu > 0 {
                let td = m.get(st_obs::Counter::RoundsTopDown);
                self.journal.record_now(
                    trace,
                    JobEventKind::DirectionSwitched,
                    Some(lane),
                    team,
                    Some(format!("rounds_top_down={td},rounds_bottom_up={bu}")),
                );
            }
            let wall_ns = queue_ns + exec_ns;
            if wall_ns >= self.slow_threshold_ns {
                let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
                if slow.len() >= SLOW_LOG_CAPACITY {
                    slow.pop_front();
                }
                slow.push_back(SlowJob {
                    trace,
                    wall_ns,
                    metrics_json: m.to_json(),
                });
            }
        }
        self.journal.record_now(
            trace,
            JobEventKind::Finished,
            Some(lane),
            team,
            Some(outcome.to_owned()),
        );
    }

    /// Records a submission resolved from the result cache (its wall
    /// latency goes to the dedicated cached series, not the execution
    /// histograms).
    pub(crate) fn on_cached(&self, trace: TraceId, lane: u8, wall_ns: u64) {
        self.cached_wall.record(wall_ns);
        self.journal.record_now(
            trace,
            JobEventKind::Finished,
            Some(lane),
            None,
            Some("cache_hit".to_owned()),
        );
    }

    /// Records one applied batch update's wall latency under the
    /// maintenance path that ran.
    pub(crate) fn on_update(&self, incremental: bool, wall_ns: u64) {
        if incremental {
            self.update_incremental.record(wall_ns);
        } else {
            self.update_recomputed.record(wall_ns);
        }
    }

    // ---- read side (HTTP observability plane, tests, bench) ----

    /// p50/p99 of completed-job wall latency across all lanes,
    /// nanoseconds (0 when nothing completed) — the server-side numbers
    /// the bench report pairs with its client-side stopwatch.
    pub fn wall_quantiles(&self) -> (u64, u64) {
        let mut merged = self.lane_wall[0].snapshot();
        for lane in &self.lane_wall[1..] {
            merged.merge(&lane.snapshot());
        }
        (merged.quantile(0.50), merged.quantile(0.99))
    }

    /// The latency histogram families for the Prometheus page.
    pub fn histogram_families(&self) -> Vec<HistogramFamily> {
        let lane_series = |hists: &[ShardedHistogram; QUEUE_LANES]| -> Vec<HistogramSeries> {
            hists
                .iter()
                .zip(LANE_NAMES)
                .map(|(h, name)| HistogramSeries {
                    labels: vec![("lane", name.to_owned())],
                    snapshot: h.snapshot(),
                })
                .collect()
        };
        vec![
            HistogramFamily {
                name: "st_service_job_queue_seconds",
                help: "Queue wait of completed jobs, by priority lane.",
                series: lane_series(&self.lane_queue),
            },
            HistogramFamily {
                name: "st_service_job_exec_seconds",
                help: "Execution time of completed jobs, by priority lane.",
                series: lane_series(&self.lane_exec),
            },
            HistogramFamily {
                name: "st_service_job_wall_seconds",
                help: "End-to-end latency (queue + exec) of completed jobs, by priority lane.",
                series: lane_series(&self.lane_wall),
            },
            HistogramFamily {
                name: "st_service_update_seconds",
                help: "Wall latency of applied batch updates, by maintenance mode.",
                series: vec![
                    HistogramSeries {
                        labels: vec![("mode", "incremental".to_owned())],
                        snapshot: self.update_incremental.snapshot(),
                    },
                    HistogramSeries {
                        labels: vec![("mode", "recomputed".to_owned())],
                        snapshot: self.update_recomputed.snapshot(),
                    },
                ],
            },
            HistogramFamily {
                name: "st_service_cached_wall_seconds",
                help: "End-to-end latency of submissions served from the result cache.",
                series: vec![HistogramSeries {
                    labels: Vec::new(),
                    snapshot: self.cached_wall.snapshot(),
                }],
            },
            HistogramFamily {
                name: "st_service_algo_exec_seconds",
                help: "Execution time of completed jobs, by algorithm.",
                series: self
                    .algo_exec
                    .iter()
                    .map(|(name, h)| HistogramSeries {
                        labels: vec![("algorithm", (*name).to_owned())],
                        snapshot: h.snapshot(),
                    })
                    .collect(),
            },
        ]
    }

    /// The in-flight table as a JSON array (sorted by trace id so the
    /// output is stable).
    pub fn inflight_json(&self) -> String {
        let mut jobs: Vec<InflightJob> = self
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        jobs.sort_by_key(|j| j.trace);
        let mut out = String::with_capacity(64 + jobs.len() * 128);
        out.push('[');
        for (i, j) in jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":\"{}\",\"lane\":{},\"algorithm\":\"{}\",\"stage\":\"{}\",",
                j.trace, j.lane, j.algorithm, j.stage
            ));
            match j.team {
                Some(t) => out.push_str(&format!("\"team\":{t},")),
                None => out.push_str("\"team\":null,"),
            }
            out.push_str(&format!("\"submitted_t_ns\":{}}}", j.submitted_t_ns));
        }
        out.push(']');
        out
    }

    /// Jobs currently admitted but unresolved.
    pub fn inflight_len(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Recent slow-job reports, oldest first.
    pub fn slow_jobs(&self) -> Vec<SlowJob> {
        self.slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The slow-job log as a JSON array (each entry embeds the job's
    /// full pre-rendered metrics report).
    pub fn slow_jobs_json(&self) -> String {
        let slow = self.slow_jobs();
        let mut out = String::with_capacity(64 + slow.len() * 256);
        out.push('[');
        for (i, s) in slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":\"{}\",\"wall_ns\":{},\"metrics\":",
                s.trace, s.wall_ns
            ));
            out.push_str(&s.metrics_json);
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Escapes `s` as a JSON string body (re-exported convenience for the
/// HTTP layer's error payloads).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    escape_json_into(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_labels_are_bounded() {
        assert_eq!(Telemetry::algo_label("bader-cong"), "bader-cong");
        assert_eq!(Telemetry::algo_label("sv"), "sv");
        assert_eq!(Telemetry::algo_label("my-custom-algo"), "other");
        assert_eq!(Telemetry::algo_label(""), "other");
    }

    #[test]
    fn completed_jobs_feed_histograms_and_inflight_drains() {
        let t = Telemetry::new(64, u64::MAX);
        let id = TraceId::mint();
        t.on_admitted(id, 0, "bader-cong");
        assert_eq!(t.inflight_len(), 1);
        t.on_started(id, 0, 2);
        t.on_finished(
            id,
            0,
            Some(2),
            "completed",
            1_000_000,
            4_000_000,
            true,
            "bader-cong",
            None,
        );
        assert_eq!(t.inflight_len(), 0);
        let (p50, p99) = t.wall_quantiles();
        assert!(p50 >= 5_000_000, "wall = queue + exec, p50 = {p50}");
        assert!(p99 >= p50);
        let families = t.histogram_families();
        let wall = families
            .iter()
            .find(|f| f.name == "st_service_job_wall_seconds")
            .unwrap();
        let high = &wall.series[0];
        assert_eq!(high.labels, vec![("lane", "high".to_owned())]);
        assert_eq!(high.snapshot.count, 1);
        let algo = families
            .iter()
            .find(|f| f.name == "st_service_algo_exec_seconds")
            .unwrap();
        let bc = algo
            .series
            .iter()
            .find(|s| s.labels[0].1 == "bader-cong")
            .unwrap();
        assert_eq!(bc.snapshot.count, 1);
    }

    #[test]
    fn non_completed_outcomes_skip_latency_histograms() {
        let t = Telemetry::new(64, u64::MAX);
        let id = TraceId::mint();
        t.on_admitted(id, 1, "sv");
        t.on_finished(id, 1, None, "cancelled", 500, 0, false, "sv", None);
        assert_eq!(t.wall_quantiles(), (0, 0));
        assert_eq!(t.inflight_len(), 0);
    }

    #[test]
    fn cached_hits_use_their_own_series() {
        let t = Telemetry::new(64, u64::MAX);
        let id = TraceId::mint();
        t.on_cached(id, 1, 2_000);
        assert_eq!(t.wall_quantiles(), (0, 0), "cache hits stay out of wall");
        let families = t.histogram_families();
        let cached = families
            .iter()
            .find(|f| f.name == "st_service_cached_wall_seconds")
            .unwrap();
        assert_eq!(cached.series[0].snapshot.count, 1);
        let events = t.journal().events_for(id);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detail.as_deref(), Some("cache_hit"));
    }

    #[test]
    fn slow_jobs_keep_full_metrics() {
        let t = Telemetry::new(64, 1_000_000); // 1ms threshold
        let fast = TraceId::mint();
        let slow = TraceId::mint();
        let m = JobMetrics {
            trace_id: slow.as_u64(),
            p: 2,
            ..JobMetrics::default()
        };
        t.on_finished(
            fast,
            0,
            Some(0),
            "completed",
            100,
            100,
            true,
            "hcs",
            Some(&m),
        );
        t.on_finished(
            slow,
            0,
            Some(0),
            "completed",
            1_000_000,
            5_000_000,
            true,
            "hcs",
            Some(&m),
        );
        let reports = t.slow_jobs();
        assert_eq!(reports.len(), 1, "only the slow job is kept");
        assert_eq!(reports[0].trace, slow);
        assert_eq!(reports[0].wall_ns, 6_000_000);
        assert!(reports[0].metrics_json.contains("\"trace_id\""));
        let json = t.slow_jobs_json();
        assert!(json.starts_with('['));
        serde_json::parse_value(&json).expect("slow-job JSON parses");
    }

    #[test]
    fn inflight_json_is_valid() {
        let t = Telemetry::new(64, u64::MAX);
        let a = TraceId::mint();
        let b = TraceId::mint();
        t.on_admitted(a, 0, "bader-cong");
        t.on_admitted(b, 2, "other");
        t.on_started(b, 2, 1);
        let json = t.inflight_json();
        let v = serde_json::parse_value(&json).expect("inflight JSON parses");
        match v {
            serde::Value::Array(jobs) => assert_eq!(jobs.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert!(json.contains("\"stage\":\"queued\""));
        assert!(json.contains("\"stage\":\"running\""));
        assert!(json.contains("\"team\":1"));
    }

    #[test]
    fn direction_switch_is_journaled() {
        let t = Telemetry::new(64, u64::MAX);
        let id = TraceId::mint();
        let mut m = JobMetrics::default();
        // Simulate a hybrid run with both directions exercised.
        let set = st_obs::CounterSet::new(1);
        set.rank(0).add(st_obs::Counter::RoundsTopDown, 3);
        set.rank(0).add(st_obs::Counter::RoundsBottomUp, 2);
        m.totals = set.merged();
        t.on_finished(id, 1, Some(0), "completed", 10, 10, true, "sv", Some(&m));
        let events = t.journal().events_for(id);
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![JobEventKind::DirectionSwitched, JobEventKind::Finished],
            "switch event precedes the finish"
        );
        assert!(events[0]
            .detail
            .as_deref()
            .unwrap()
            .contains("rounds_bottom_up=2"));
    }
}
