//! Closed-form §3 predictions.
//!
//! The paper derives, for realistic problem sizes (n ≫ p²):
//!
//! * **New algorithm**:
//!   `T(n, p) ≤ ⟨5n/p + 2m/p + O(p); O((n + m)/p); 2⟩`
//! * **SV**, assuming the worst case of log n iterations:
//!   `T(n, p) ≤ ⟨(n log²n)/p + (4m log n)/p + 2 log n; O((n log²n + m log n)/p); 4 log n⟩`
//!
//! and concludes the randomized approach does roughly log n times less
//! work per iteration, touches memory non-contiguously a constant number
//! of times per input element, and synchronizes O(1) times instead of
//! O(log n).

use crate::machine::MachineProfile;

/// A Helman–JáJá cost triplet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Triplet {
    /// Maximum non-contiguous memory accesses per processor.
    pub t_m: f64,
    /// Maximum local computation per processor (operation count).
    pub t_c: f64,
    /// Barrier synchronizations.
    pub b: f64,
}

impl Triplet {
    /// Predicted wall-clock seconds under `machine` with `p` processors.
    pub fn predicted_seconds(&self, machine: &MachineProfile, p: usize) -> f64 {
        (self.t_m * machine.effective_mem_ns(p)
            + self.t_c * machine.op_ns
            + self.b * machine.barrier_ns(p))
            * 1e-9
    }
}

/// §3 prediction for the new SMP algorithm.
pub fn new_algorithm(n: usize, m: usize, p: usize) -> Triplet {
    let (nf, mf, pf) = (n as f64, m as f64, p as f64);
    Triplet {
        t_m: 5.0 * nf / pf + 2.0 * mf / pf + pf,
        t_c: (nf + mf) / pf,
        b: 2.0,
    }
}

/// §3 prediction for the sequential BFS baseline (the same memory-access
/// accounting with p = 1 and no barriers or stub overhead).
pub fn sequential(n: usize, m: usize) -> Triplet {
    let (nf, mf) = (n as f64, m as f64);
    Triplet {
        t_m: 5.0 * nf + 2.0 * mf,
        t_c: nf + mf,
        b: 0.0,
    }
}

/// §3 worst-case prediction for SV (log n iterations).
pub fn sv_worst_case(n: usize, m: usize, p: usize) -> Triplet {
    let (nf, mf, pf) = (n as f64, m as f64, p as f64);
    let log_n = (nf.max(2.0)).log2();
    Triplet {
        t_m: nf * log_n * log_n / pf + 4.0 * mf * log_n / pf + 2.0 * log_n,
        t_c: (nf * log_n * log_n + mf * log_n) / pf,
        b: 4.0 * log_n,
    }
}

/// §3 prediction for SV given a measured iteration count (the paper:
/// "for the best case, one iteration of the algorithm may be
/// sufficient"). Each iteration costs two graft passes of 2m/p + 1
/// non-contiguous accesses and a pointer-jumping step of (n log n)/p.
pub fn sv_with_iterations(n: usize, m: usize, p: usize, iterations: usize) -> Triplet {
    let (nf, mf, pf, i) = (n as f64, m as f64, p as f64, iterations.max(1) as f64);
    let log_n = (nf.max(2.0)).log2();
    Triplet {
        t_m: i * (2.0 * (2.0 * mf / pf + 1.0) + nf * log_n / pf),
        t_c: i * ((nf * log_n + mf) / pf),
        b: 4.0 * i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 20;
    const M: usize = 3 * (1 << 20) / 2;

    #[test]
    fn new_algorithm_scales_inversely_with_p() {
        let t1 = new_algorithm(N, M, 1);
        let t8 = new_algorithm(N, M, 8);
        assert!(t8.t_m < t1.t_m / 7.0);
        assert_eq!(t8.b, 2.0);
    }

    #[test]
    fn sv_does_asymptotically_more_work() {
        let new = new_algorithm(N, M, 8);
        let sv = sv_worst_case(N, M, 8);
        assert!(
            sv.t_m > 10.0 * new.t_m,
            "SV should cost ≫ the new algorithm"
        );
        assert!(sv.b > new.b);
    }

    #[test]
    fn predicted_speedup_over_sequential_is_in_paper_band() {
        // Fig. 3: random graph, m = 1.5 n, p = 8, speedup 4.5–5.5.
        let machine = MachineProfile::e4500();
        let seq = sequential(N, M).predicted_seconds(&machine, 1);
        let par = new_algorithm(N, M, 8).predicted_seconds(&machine, 8);
        let speedup = seq / par;
        assert!(
            (3.5..7.0).contains(&speedup),
            "analytic speedup {speedup:.2} far outside the paper's band"
        );
    }

    #[test]
    fn sv_with_few_iterations_still_beats_worst_case() {
        let best = sv_with_iterations(N, M, 8, 1);
        let worst = sv_worst_case(N, M, 8);
        assert!(best.t_m < worst.t_m);
    }

    #[test]
    fn pram_profile_reduces_to_op_counts() {
        let t = Triplet {
            t_m: 100.0,
            t_c: 50.0,
            b: 5.0,
        };
        let secs = t.predicted_seconds(&MachineProfile::pram(), 4);
        assert!((secs - 150e-9).abs() < 1e-15);
    }
}
