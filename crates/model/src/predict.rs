//! Prediction helpers over the simulators: speedup curves, parallel
//! efficiency, and break-even processor counts.
//!
//! These answer the reader-facing questions the paper's figures encode —
//! *at what p does the parallel algorithm beat sequential?* ("For p > 2
//! processors … always faster"), *how efficient is it at p = 8?* — as
//! first-class queries instead of chart-squinting.

use st_graph::CsrGraph;

use crate::machine::MachineProfile;
use crate::sim::{simulate_bader_cong, simulate_sequential_bfs, simulate_sv, TraversalSimConfig};

/// Which simulated algorithm a curve describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimAlgorithm {
    /// The Bader–Cong work-stealing traversal.
    BaderCong,
    /// Shiloach–Vishkin (election).
    Sv,
}

/// A speedup curve over processor counts.
#[derive(Clone, Debug)]
pub struct SpeedupCurve {
    /// Algorithm simulated.
    pub algorithm: SimAlgorithm,
    /// Sequential BFS baseline time, seconds.
    pub sequential_seconds: f64,
    /// (p, predicted seconds, speedup) per sampled processor count.
    pub points: Vec<(usize, f64, f64)>,
}

impl SpeedupCurve {
    /// Speedup at processor count `p`, when sampled.
    pub fn speedup_at(&self, p: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(pp, _, _)| pp == p)
            .map(|&(_, _, s)| s)
    }

    /// Parallel efficiency (speedup / p) at `p`, when sampled.
    pub fn efficiency_at(&self, p: usize) -> Option<f64> {
        self.speedup_at(p).map(|s| s / p as f64)
    }

    /// Smallest sampled p whose predicted time beats sequential, if any.
    pub fn break_even_p(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|&&(_, _, s)| s > 1.0)
            .map(|&(p, _, _)| p)
    }
}

/// Simulates `algorithm` on `g` over the processor counts in `ps` and
/// returns its speedup curve against sequential BFS.
///
/// ```
/// use st_graph::gen;
/// use st_model::{speedup_curve, MachineProfile, SimAlgorithm};
///
/// let g = gen::random_gnm(4_096, 6_144, 42);
/// let curve = speedup_curve(
///     &g,
///     SimAlgorithm::BaderCong,
///     &[1, 2, 8],
///     &MachineProfile::e4500(),
/// );
/// assert!(curve.speedup_at(8).unwrap() > 3.0);
/// assert_eq!(curve.break_even_p(), Some(2)); // p = 1 pays stub overhead
/// ```
pub fn speedup_curve(
    g: &CsrGraph,
    algorithm: SimAlgorithm,
    ps: &[usize],
    machine: &MachineProfile,
) -> SpeedupCurve {
    let sequential_seconds = simulate_sequential_bfs(g, machine).0.predicted_seconds();
    let points = ps
        .iter()
        .map(|&p| {
            let secs = match algorithm {
                SimAlgorithm::BaderCong => {
                    simulate_bader_cong(g, p, TraversalSimConfig::default(), machine)
                        .report
                        .predicted_seconds()
                }
                SimAlgorithm::Sv => simulate_sv(g, p, machine).report.predicted_seconds(),
            };
            (p, secs, sequential_seconds / secs)
        })
        .collect();
    SpeedupCurve {
        algorithm,
        sequential_seconds,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, random_gnm};

    const PS: [usize; 5] = [1, 2, 4, 8, 12];

    #[test]
    fn bader_cong_breaks_even_by_two_processors() {
        // The paper: "For p > 2 processors ... always faster than the
        // sequential algorithm" on non-pathological inputs.
        let g = random_gnm(1 << 13, 3 << 12, 3);
        let c = speedup_curve(&g, SimAlgorithm::BaderCong, &PS, &MachineProfile::e4500());
        assert!(c.break_even_p().unwrap() <= 2, "{:?}", c.points);
        assert!(c.speedup_at(8).unwrap() > 3.5);
    }

    #[test]
    fn sv_breaks_even_late_or_never() {
        let g = random_gnm(1 << 13, 3 << 12, 3);
        let c = speedup_curve(&g, SimAlgorithm::Sv, &PS, &MachineProfile::e4500());
        // Never beating sequential is the common case for SV.
        if let Some(p) = c.break_even_p() {
            assert!(p >= 4, "SV broke even suspiciously early (p = {p})");
        }
    }

    #[test]
    fn chain_never_breaks_even() {
        let g = chain(1 << 13);
        let c = speedup_curve(&g, SimAlgorithm::BaderCong, &PS, &MachineProfile::e4500());
        // Speedup hovers at/below 1 for all p.
        assert!(c.points.iter().all(|&(_, _, s)| s < 1.2), "{:?}", c.points);
    }

    #[test]
    fn efficiency_declines_with_p() {
        let g = random_gnm(1 << 13, 3 << 12, 5);
        let c = speedup_curve(&g, SimAlgorithm::BaderCong, &PS, &MachineProfile::e4500());
        let e2 = c.efficiency_at(2).unwrap();
        let e12 = c.efficiency_at(12).unwrap();
        assert!(e2 > e12, "efficiency should fall with contention");
        assert!(e2 <= 1.05, "superlinear efficiency is a model bug");
    }

    #[test]
    fn missing_p_returns_none() {
        let g = random_gnm(512, 700, 1);
        let c = speedup_curve(
            &g,
            SimAlgorithm::BaderCong,
            &[2, 4],
            &MachineProfile::e4500(),
        );
        assert!(c.speedup_at(16).is_none());
        assert!(c.efficiency_at(16).is_none());
    }
}
