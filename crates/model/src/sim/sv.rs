//! Instrumented simulation of Shiloach–Vishkin (election variant) on p
//! virtual processors.
//!
//! SV is bulk-synchronous: barriers separate the winner-reset, election,
//! graft, and each pointer-jumping round, so each phase contributes its
//! maximum per-processor cost to the makespan (edges and vertices are
//! block-partitioned across processors exactly as in the real
//! implementation).
//!
//! Accounting follows §3: "In each pass, there are two non-contiguous
//! memory accesses per edge", and pointer jumping costs two
//! non-contiguous accesses per vertex per round. Contiguous sweeps
//! (winner reset, loop indices) are charged as local operations only.

use st_graph::{CsrGraph, VertexId};
use st_smp::team::block_range;

use crate::machine::MachineProfile;

use super::report::{CostReport, PhaseCost};

/// Output of the simulated SV run.
#[derive(Clone, Debug)]
pub struct SvSimOutput {
    /// Cost report.
    pub report: CostReport,
    /// Final hook array (component root labels).
    pub labels: Vec<VertexId>,
    /// Spanning-forest edges collected from grafts.
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Graft-and-shortcut iterations (including the final empty one).
    pub iterations: usize,
    /// Total pointer-jumping rounds.
    pub shortcut_rounds: usize,
}

const NO_WINNER: u64 = u64::MAX;

/// Simulates SV with `p` virtual processors under `machine`.
///
/// The election is resolved deterministically (last writer in edge-index
/// order), a legal outcome of the arbitrary-CRCW store the real
/// implementation uses.
pub fn simulate_sv(g: &CsrGraph, p: usize, machine: &MachineProfile) -> SvSimOutput {
    assert!(p > 0, "need at least one virtual processor");
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    let mut report = CostReport::new(p, machine);
    let mut d: Vec<VertexId> = (0..n as VertexId).collect();
    let mut winner: Vec<u64> = vec![NO_WINNER; n];
    let mut tree_edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut iterations = 0usize;
    let mut shortcut_rounds = 0usize;
    let mut makespan_ns = 0.0f64;

    // Adds a barrier-terminated phase where processor `r` pays
    // `mem_per_item`/`ops_per_item` over its block of `total` items.
    let charge_phase = |report: &mut CostReport,
                        makespan_ns: &mut f64,
                        total: usize,
                        mem_per_item: u64,
                        ops_per_item: u64| {
        let mut max = PhaseCost::default();
        for rank in 0..p {
            let items = block_range(rank, p, total).len() as u64;
            let cost = PhaseCost {
                mem: mem_per_item * items,
                ops: ops_per_item * items,
            };
            report.per_proc_mem[rank] += cost.mem;
            report.per_proc_ops[rank] += cost.ops;
            max.mem = max.mem.max(cost.mem);
            max.ops = max.ops.max(cost.ops);
        }
        *makespan_ns += max.ns(machine, p);
        report.barriers += 1;
    };

    loop {
        iterations += 1;

        // --- Winner reset (contiguous sweep: ops only).
        for w in winner.iter_mut() {
            *w = NO_WINNER;
        }
        charge_phase(&mut report, &mut makespan_ns, n, 0, 1);

        // --- Election: two non-contiguous reads per edge (+1 write for
        // candidates; charged uniformly at 3 to stay conservative).
        for (e, &(u, v)) in edges.iter().enumerate() {
            let du = d[u as usize];
            let dv = d[v as usize];
            if du == dv {
                continue;
            }
            if dv < du {
                winner[du as usize] = (e as u64) * 2;
            } else {
                winner[dv as usize] = (e as u64) * 2 + 1;
            }
        }
        charge_phase(&mut report, &mut makespan_ns, m, 3, 4);

        // --- Graft: the unique winner of each root grafts it.
        let mut grafted = false;
        for (e, &(u, v)) in edges.iter().enumerate() {
            let ru = d[u as usize];
            if winner[ru as usize] == (e as u64) * 2 {
                d[ru as usize] = d[v as usize];
                tree_edges.push((u, v));
                grafted = true;
            }
            let rv = d[v as usize];
            if winner[rv as usize] == (e as u64) * 2 + 1 {
                d[rv as usize] = d[u as usize];
                tree_edges.push((u, v));
                grafted = true;
            }
        }
        charge_phase(&mut report, &mut makespan_ns, m, 3, 4);

        if !grafted {
            break;
        }

        // --- Shortcut: pointer jumping to rooted stars.
        loop {
            let mut changed = false;
            for v in 0..n {
                let dv = d[v];
                let ddv = d[dv as usize];
                if dv != ddv {
                    d[v] = ddv;
                    changed = true;
                }
            }
            shortcut_rounds += 1;
            charge_phase(&mut report, &mut makespan_ns, n, 2, 2);
            if !changed {
                break;
            }
        }
    }

    report.makespan_ns = makespan_ns;
    SvSimOutput {
        report,
        labels: d,
        tree_edges,
        iterations,
        shortcut_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineProfile;
    use crate::sim::{simulate_bader_cong, simulate_sequential_bfs, TraversalSimConfig};
    use st_graph::gen::{chain, random_gnm, torus2d};
    use st_graph::label::{random_permutation, relabel};
    use st_graph::validate::{component_labels, count_components, is_spanning_forest};
    use st_graph::CsrGraph;

    fn e4500() -> MachineProfile {
        MachineProfile::e4500()
    }

    #[test]
    fn labels_match_reference_components() {
        for seed in 0..3 {
            let g = random_gnm(400, 300, seed);
            let out = simulate_sv(&g, 4, &e4500());
            let reference = component_labels(&g);
            // Same-partition check.
            let mut map = std::collections::HashMap::new();
            for (&l, &r) in out.labels.iter().zip(reference.iter()) {
                assert_eq!(*map.entry(l).or_insert(r), r);
            }
        }
    }

    #[test]
    fn tree_edges_form_spanning_forest() {
        let g = random_gnm(500, 700, 2);
        let out = simulate_sv(&g, 2, &e4500());
        assert_eq!(out.tree_edges.len(), 500 - count_components(&g));
        // Orient them via the core utility and validate.
        let parents = st_core::orient::orient_forest(500, &out.tree_edges, 2);
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn deterministic() {
        let g = torus2d(20, 20);
        assert_eq!(
            simulate_sv(&g, 4, &e4500()).report,
            simulate_sv(&g, 4, &e4500()).report
        );
    }

    #[test]
    fn labeling_sensitivity_claim() {
        // CLAIM-SVLABEL: the same torus needs more iterations under a
        // random labeling than under row-major labels.
        let g = torus2d(32, 32);
        let row = simulate_sv(&g, 4, &e4500());
        let h = relabel(&g, &random_permutation(g.num_vertices(), 9));
        let rand_lab = simulate_sv(&h, 4, &e4500());
        assert!(
            rand_lab.iterations > row.iterations,
            "random {} vs row-major {}",
            rand_lab.iterations,
            row.iterations
        );
        assert!(
            rand_lab.report.predicted_seconds() > row.report.predicted_seconds(),
            "random labeling should also cost more time"
        );
    }

    #[test]
    fn sv_slower_than_new_algorithm_on_random_graphs() {
        // The headline comparison of Fig. 4's random panel.
        let n = 1 << 13;
        let g = random_gnm(n, 2 * n, 3);
        let machine = e4500();
        for p in [2usize, 4, 8] {
            let sv_t = simulate_sv(&g, p, &machine).report.predicted_seconds();
            let bc_t = simulate_bader_cong(&g, p, TraversalSimConfig::default(), &machine)
                .report
                .predicted_seconds();
            assert!(
                sv_t > bc_t,
                "SV ({sv_t:.6}s) should be slower than the new algorithm ({bc_t:.6}s) at p = {p}"
            );
        }
    }

    #[test]
    fn sv_often_loses_to_sequential() {
        // "In many cases, the SV parallel approach is slower than the
        // best sequential algorithm" — check at small p on a random
        // graph.
        let n = 1 << 13;
        let g = random_gnm(n, 2 * n, 4);
        let machine = e4500();
        let seq_t = simulate_sequential_bfs(&g, &machine).0.predicted_seconds();
        let sv2_t = simulate_sv(&g, 2, &machine).report.predicted_seconds();
        assert!(sv2_t > seq_t, "SV at p=2 should lose to sequential BFS");
    }

    #[test]
    fn sv_scales_with_p() {
        let n = 1 << 13;
        let g = random_gnm(n, 2 * n, 5);
        let machine = e4500();
        let t2 = simulate_sv(&g, 2, &machine).report.predicted_seconds();
        let t8 = simulate_sv(&g, 8, &machine).report.predicted_seconds();
        assert!(t8 < t2, "SV should still speed up with more processors");
    }

    #[test]
    fn chain_sequential_labels_one_iteration() {
        let out = simulate_sv(&chain(2_000), 2, &e4500());
        // Grafts cascade to vertex 0 immediately; iteration 2 detects
        // convergence.
        assert!(out.iterations <= 2, "iterations = {}", out.iterations);
    }

    #[test]
    fn empty_graph() {
        let out = simulate_sv(&CsrGraph::empty(3), 2, &e4500());
        assert!(out.tree_edges.is_empty());
        assert_eq!(out.labels, vec![0, 1, 2]);
    }
}
