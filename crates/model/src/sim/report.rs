//! Cost accounting shared by the simulators.

use serde::{Deserialize, Serialize};

use crate::machine::MachineProfile;

/// Cost of one barrier-delimited phase in model units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Non-contiguous memory accesses on the critical path of the phase.
    pub mem: u64,
    /// Local operations on the critical path of the phase.
    pub ops: u64,
}

impl PhaseCost {
    /// Component-wise addition.
    pub fn add(&mut self, other: PhaseCost) {
        self.mem += other.mem;
        self.ops += other.ops;
    }

    /// Converts to nanoseconds under `machine` with `p` processors on
    /// the bus.
    pub fn ns(&self, machine: &MachineProfile, p: usize) -> f64 {
        self.mem as f64 * machine.effective_mem_ns(p) + self.ops as f64 * machine.op_ns
    }
}

/// Full cost report of one simulated run.
///
/// Simulation happens under a concrete [`MachineProfile`]: the
/// event-driven traversal simulator needs the machine's timings to
/// schedule processors, so the makespan is recorded directly in
/// nanoseconds while the raw T_M / T_C counters stay available per
/// processor.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Virtual processor count.
    pub p: usize,
    /// Total non-contiguous accesses per virtual processor (the model's
    /// T_M is the max of these).
    pub per_proc_mem: Vec<u64>,
    /// Total local operations per virtual processor.
    pub per_proc_ops: Vec<u64>,
    /// Critical-path (makespan) time excluding barriers, ns.
    pub makespan_ns: f64,
    /// Barrier episodes.
    pub barriers: u64,
    /// Barrier cost per episode at this p, ns (copied from the machine
    /// profile at simulation time).
    pub barrier_ns: f64,
}

impl CostReport {
    /// A fresh report for `p` processors under `machine`.
    pub fn new(p: usize, machine: &MachineProfile) -> Self {
        Self {
            p,
            per_proc_mem: vec![0; p],
            per_proc_ops: vec![0; p],
            makespan_ns: 0.0,
            barriers: 0,
            barrier_ns: machine.barrier_ns(p),
        }
    }

    /// T_M: the maximum per-processor non-contiguous access count.
    pub fn t_m(&self) -> u64 {
        self.per_proc_mem.iter().copied().max().unwrap_or(0)
    }

    /// T_C: the maximum per-processor operation count.
    pub fn t_c(&self) -> u64 {
        self.per_proc_ops.iter().copied().max().unwrap_or(0)
    }

    /// Predicted wall-clock seconds: makespan plus barrier overhead.
    pub fn predicted_seconds(&self) -> f64 {
        (self.makespan_ns + self.barriers as f64 * self.barrier_ns) * 1e-9
    }

    /// Work imbalance: max per-proc memory cost over the mean (1.0 =
    /// perfect balance; 0.0 for an empty run).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_proc_mem.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.p as f64;
        self.t_m() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxima_and_imbalance() {
        let r = CostReport {
            p: 4,
            per_proc_mem: vec![10, 20, 30, 40],
            per_proc_ops: vec![1, 2, 3, 4],
            makespan_ns: 1000.0,
            barriers: 2,
            barrier_ns: 100.0,
        };
        assert_eq!(r.t_m(), 40);
        assert_eq!(r.t_c(), 4);
        assert!((r.imbalance() - 1.6).abs() < 1e-12);
        assert!((r.predicted_seconds() - 1200e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_report() {
        let r = CostReport::new(3, &MachineProfile::pram());
        assert_eq!(r.t_m(), 0);
        assert_eq!(r.imbalance(), 0.0);
        assert_eq!(r.predicted_seconds(), 0.0);
    }

    #[test]
    fn phase_cost_math() {
        let mut a = PhaseCost { mem: 1, ops: 2 };
        a.add(PhaseCost { mem: 10, ops: 20 });
        assert_eq!(a, PhaseCost { mem: 11, ops: 22 });
        let pram = MachineProfile::pram();
        assert!((a.ns(&pram, 4) - 33.0).abs() < 1e-12);
    }
}
