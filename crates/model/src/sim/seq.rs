//! Instrumented sequential BFS (the speedup denominator).

use std::collections::VecDeque;

use st_graph::{CsrGraph, VertexId, NO_VERTEX};

use crate::machine::MachineProfile;

use super::report::{CostReport, PhaseCost};

/// Operation-count constants shared by the sequential and parallel
/// traversal simulators, so that their comparison is apples-to-apples.
pub(crate) const OPS_PER_VERTEX: u64 = 8;
pub(crate) const OPS_PER_EDGE: u64 = 4;
/// Non-contiguous accesses per dequeued vertex (adjacency-offset fetch).
pub(crate) const MEM_PER_VERTEX: u64 = 1;
/// Non-contiguous accesses per examined directed edge: "two
/// non-contiguous accesses per edge to find the adjacent vertices, check
/// their colors, and set the parent" (§3).
pub(crate) const MEM_PER_EDGE: u64 = 2;

/// Simulates the sequential BFS spanning forest under `machine`,
/// returning its cost report and the forest parents (for validation).
pub fn simulate_sequential_bfs(
    g: &CsrGraph,
    machine: &MachineProfile,
) -> (CostReport, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut report = CostReport::new(1, machine);
    let mut parents = vec![NO_VERTEX; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut total = PhaseCost::default();

    for s in 0..n as VertexId {
        if visited[s as usize] {
            continue;
        }
        visited[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            total.mem += MEM_PER_VERTEX;
            total.ops += OPS_PER_VERTEX;
            for &w in g.neighbors(v) {
                total.mem += MEM_PER_EDGE;
                total.ops += OPS_PER_EDGE;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parents[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
    }
    report.per_proc_mem[0] = total.mem;
    report.per_proc_ops[0] = total.ops;
    report.makespan_ns = total.ns(machine, 1);
    report.barriers = 0;
    (report, parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, random_gnm, torus2d};
    use st_graph::validate::is_spanning_forest;

    #[test]
    fn costs_match_closed_form() {
        let g = torus2d(10, 10);
        let (r, parents) = simulate_sequential_bfs(&g, &MachineProfile::e4500());
        let n = 100u64;
        let m = 200u64;
        // Every vertex dequeued once, every directed edge examined once.
        assert_eq!(r.t_m(), n * MEM_PER_VERTEX + 2 * m * MEM_PER_EDGE);
        assert_eq!(r.t_c(), n * OPS_PER_VERTEX + 2 * m * OPS_PER_EDGE);
        assert_eq!(r.barriers, 0);
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn forest_valid_on_disconnected() {
        let g = random_gnm(200, 100, 3);
        let (_, parents) = simulate_sequential_bfs(&g, &MachineProfile::e4500());
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn chain_costs_linear() {
        let (r, _) = simulate_sequential_bfs(&chain(1000), &MachineProfile::pram());
        assert_eq!(r.t_m(), 1000 + 2 * 999 * MEM_PER_EDGE);
        // PRAM: makespan equals mem + ops counts in ns.
        let expected = (r.t_m() + r.t_c()) as f64;
        assert!((r.makespan_ns - expected).abs() < 1e-9);
    }
}
