//! Instrumented simulation of the lock-based SV grafting variant.
//!
//! "One straightforward solution uses locks to ensure that a tree gets
//! grafted only once. The locking approach intuitively is slow and not
//! scalable, and our test results agree." (§2)
//!
//! Why it is slow: every edge whose endpoint roots differ *attempts* the
//! graft, which means acquiring the root's lock — an atomic
//! read-modify-write that bounces the lock's cache line — and the
//! attempts on any one root serialize. The election variant pays one
//! plain write per candidate instead and lets exactly one edge act.
//!
//! The simulator charges, on top of the same per-edge scanning costs as
//! the election variant:
//!
//! * `LOCK_MEM` non-contiguous accesses per lock acquire/release pair
//!   (the RMW plus the line bounce), for every *attempted* graft; and
//! * a serialization term: attempts on the same root queue behind one
//!   lock, so each root adds `(attempts − 1) · CS_MEM` accesses to the
//!   critical path, spread over the processors that issued them. On a
//!   star-like grafting pattern (many trees hooking into one hub tree)
//!   this term dominates and scaling collapses — exactly the paper's
//!   "not scalable".

use st_graph::{CsrGraph, VertexId};
use st_smp::team::block_range;

use crate::machine::MachineProfile;

use super::report::{CostReport, PhaseCost};
use super::sv::SvSimOutput;

/// Non-contiguous accesses charged per lock acquire/release pair. The
/// paper's POSIX-threads implementation pays a mutex acquire + release
/// per attempt: two fenced read-modify-writes, the lock line transfer,
/// and the waiter bookkeeping — several cache-miss equivalents, far more
/// than the single plain store an election candidate costs.
const LOCK_MEM: u64 = 8;
/// Critical-section accesses serialized per queued waiter.
const CS_MEM: u64 = 4;

/// Simulates the lock-grafting SV variant with `p` virtual processors
/// under `machine`. Output shape matches [`simulate_sv`]
/// (same labels/tree-edge semantics: first eligible edge in index order
/// grafts each root, which is one legal serialization of the lock
/// protocol).
///
/// [`simulate_sv`]: super::simulate_sv
pub fn simulate_sv_lock(g: &CsrGraph, p: usize, machine: &MachineProfile) -> SvSimOutput {
    assert!(p > 0, "need at least one virtual processor");
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    let mut report = CostReport::new(p, machine);
    let mut d: Vec<VertexId> = (0..n as VertexId).collect();
    let mut tree_edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut iterations = 0usize;
    let mut shortcut_rounds = 0usize;
    let mut makespan_ns = 0.0f64;
    // Scratch: lock attempts per root this iteration.
    let mut attempts: Vec<u32> = vec![0; n];

    let charge_phase =
        |report: &mut CostReport, makespan_ns: &mut f64, per_rank: &dyn Fn(usize) -> PhaseCost| {
            let mut max = PhaseCost::default();
            for rank in 0..p {
                let cost = per_rank(rank);
                report.per_proc_mem[rank] += cost.mem;
                report.per_proc_ops[rank] += cost.ops;
                max.mem = max.mem.max(cost.mem);
                max.ops = max.ops.max(cost.ops);
            }
            *makespan_ns += max.ns(machine, p);
            report.barriers += 1;
        };

    loop {
        iterations += 1;

        // --- Grafting pass with locks. Attempts are counted against the
        // pass-entry snapshot of D: in a real parallel pass every
        // processor whose pre-graft read finds the root unmodified
        // queues on the lock, even though only the first one's graft
        // sticks. The first eligible edge in index order wins (one legal
        // serialization of the lock protocol).
        for a in attempts.iter_mut() {
            *a = 0;
        }
        let d0 = d.clone();
        let mut grafted = false;
        for &(u, v) in edges.iter() {
            for (a, b) in [(u, v), (v, u)] {
                let ra = d0[a as usize];
                let rb = d0[b as usize];
                if rb < ra && d0[ra as usize] == ra {
                    attempts[ra as usize] += 1;
                    // Under the lock: re-check against live state.
                    if d[ra as usize] == ra {
                        d[ra as usize] = rb;
                        tree_edges.push((a, b));
                        grafted = true;
                    }
                }
            }
        }

        // Scan cost per rank (same as the election's single pass) plus
        // lock attempts charged to the issuing rank's edge block.
        let lock_cost_of_block = |rank: usize| -> u64 {
            // Attempts are not tracked per rank exactly (they depend on
            // d-state order); spread them proportionally to block size,
            // which is how a block edge partition distributes them in
            // expectation.
            let total_attempts: u64 = attempts.iter().map(|&a| a as u64).sum();
            let share = block_range(rank, p, m).len() as u64;
            if m == 0 {
                0
            } else {
                total_attempts * share / m as u64
            }
        };
        // Serialization: each root's queued attempts extend the critical
        // path (they cannot overlap), bounded below by the hottest lock.
        let serialization: u64 = attempts
            .iter()
            .map(|&a| (a as u64).saturating_sub(1) * CS_MEM)
            .sum::<u64>()
            / p.max(1) as u64; // queueing spreads across ranks...
        let hottest: u64 = attempts
            .iter()
            .map(|&a| (a as u64).saturating_sub(1) * CS_MEM)
            .max()
            .unwrap_or(0); // ...but the hottest lock cannot be split.
        let serial_term = serialization.max(hottest);
        charge_phase(&mut report, &mut makespan_ns, &|rank| {
            let scan = block_range(rank, p, m).len() as u64;
            PhaseCost {
                mem: 3 * scan + LOCK_MEM * lock_cost_of_block(rank) + serial_term,
                ops: 4 * scan,
            }
        });

        if !grafted {
            break;
        }

        // --- Shortcut (identical to the election variant).
        loop {
            let mut changed = false;
            for v in 0..n {
                let dv = d[v];
                let ddv = d[dv as usize];
                if dv != ddv {
                    d[v] = ddv;
                    changed = true;
                }
            }
            shortcut_rounds += 1;
            charge_phase(&mut report, &mut makespan_ns, &|rank| {
                let items = block_range(rank, p, n).len() as u64;
                PhaseCost {
                    mem: 2 * items,
                    ops: 2 * items,
                }
            });
            if !changed {
                break;
            }
        }
    }

    report.makespan_ns = makespan_ns;
    SvSimOutput {
        report,
        labels: d,
        tree_edges,
        iterations,
        shortcut_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_sv;
    use st_graph::gen::{random_gnm, star, torus2d};
    use st_graph::validate::{count_components, is_spanning_forest};

    fn e4500() -> MachineProfile {
        MachineProfile::e4500()
    }

    #[test]
    fn produces_valid_forests() {
        for seed in 0..3 {
            let g = random_gnm(400, 500, seed);
            let out = simulate_sv_lock(&g, 4, &e4500());
            assert_eq!(out.tree_edges.len(), 400 - count_components(&g));
            let parents = st_core::orient::orient_forest(400, &out.tree_edges, 2);
            assert!(is_spanning_forest(&g, &parents));
        }
    }

    #[test]
    fn lock_variant_scales_worse_than_election() {
        // CLAIM-LOCK is about *scalability*: sequentially the lock pass
        // is actually cheaper (one pass vs the election's two — our
        // wall-clock p = 1 runs confirm it), but its speedup collapses
        // under contention while the election's does not.
        let g = random_gnm(1 << 12, 1 << 13, 7);
        let machine = e4500();
        let lock_scaling = simulate_sv_lock(&g, 1, &machine).report.predicted_seconds()
            / simulate_sv_lock(&g, 8, &machine).report.predicted_seconds();
        let elec_scaling = simulate_sv(&g, 1, &machine).report.predicted_seconds()
            / simulate_sv(&g, 8, &machine).report.predicted_seconds();
        assert!(
            lock_scaling < elec_scaling,
            "lock scaled {lock_scaling:.2}x vs election {elec_scaling:.2}x"
        );
    }

    #[test]
    fn lock_variant_does_not_scale_on_hub_patterns() {
        // A star whose hub has the LARGEST id: every edge tries to graft
        // the hub's root onto its leaf — one lock serializes all of it.
        // (A hub at id 0 would be the opposite: grafts point *toward*
        // small labels, so each leaf locks only its own root.)
        let hub = star(4_000);
        let n = hub.num_vertices() as u32;
        let perm: Vec<u32> = (0..n).map(|v| (v + n - 1) % n).collect(); // 0 -> n-1
        let g = st_graph::label::relabel(&hub, &perm);
        let machine = e4500();
        let t1 = simulate_sv_lock(&g, 1, &machine).report.predicted_seconds();
        let t8 = simulate_sv_lock(&g, 8, &machine).report.predicted_seconds();
        let scaling = t1 / t8;
        assert!(
            scaling < 3.0,
            "lock variant scaled {scaling:.2}x on the hub-heavy star; serialization should cap it"
        );
        // The election variant on the same graph scales fine.
        let e1 = simulate_sv(&g, 1, &machine).report.predicted_seconds();
        let e8 = simulate_sv(&g, 8, &machine).report.predicted_seconds();
        assert!(e1 / e8 > scaling, "election should out-scale locks here");
    }

    #[test]
    fn election_and_lock_agree_on_components() {
        let g = torus2d(20, 20);
        let machine = e4500();
        let a = simulate_sv(&g, 2, &machine);
        let b = simulate_sv_lock(&g, 2, &machine);
        assert_eq!(a.tree_edges.len(), b.tree_edges.len());
    }

    #[test]
    fn deterministic() {
        let g = random_gnm(300, 400, 1);
        let machine = e4500();
        assert_eq!(
            simulate_sv_lock(&g, 4, &machine).report,
            simulate_sv_lock(&g, 4, &machine).report
        );
    }
}
