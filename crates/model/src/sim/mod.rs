//! Deterministic instrumented executors ("the simulator").
//!
//! Each simulator executes an algorithm's exact decision structure on
//! `p` *virtual processors*, counting the Helman–JáJá quantities as it
//! goes:
//!
//! * **T_M** — non-contiguous memory accesses, charged per the paper's
//!   own accounting (§3): one access to visit a vertex, two per examined
//!   edge (fetch neighbor + check color / set parent), two per
//!   pointer-jump, and so on.
//! * **T_C** — local operations (loop and queue bookkeeping).
//! * **B** — barrier episodes.
//!
//! Two aggregation modes reflect the algorithms' synchronization
//! structure:
//!
//! * The **traversal** simulator is asynchronous between its two
//!   barriers, so it advances in lock-step *ticks* (one vertex per busy
//!   processor per tick) and accumulates the per-tick maximum onto the
//!   critical path. This is what lets the degenerate chain show its
//!   true serial behavior: one busy processor per tick, p − 1 idle.
//! * The **SV** simulator is bulk-synchronous, so each barrier-delimited
//!   phase contributes the maximum per-processor phase cost.
//!
//! The simulators are deterministic functions of (graph, p, seed): runs
//! are exactly reproducible, and their outputs are real spanning
//! forests validated against the oracles in `st_graph::validate`.

mod hcs;
mod report;
mod seq;
mod sv;
mod sv_lock;
mod traversal;

pub use hcs::simulate_hcs;
pub use report::{CostReport, PhaseCost};
pub use seq::simulate_sequential_bfs;
pub use sv::{simulate_sv, SvSimOutput};
pub use sv_lock::simulate_sv_lock;
pub use traversal::{simulate_bader_cong, TraversalSimConfig, TraversalSimOutput};
