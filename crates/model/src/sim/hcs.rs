//! Instrumented simulation of the HCS (min-hooking) algorithm.
//!
//! The paper implemented HCS and dropped it because it behaves like SV
//! on an SMP; the simulator lets the model executor verify that claim
//! quantitatively: same bulk-synchronous structure, same per-phase
//! accounting, with the arbitrary-write election replaced by the
//! min-reduction (one extra non-contiguous access per eligible edge for
//! the `fetch_min`).

use st_graph::{CsrGraph, VertexId};
use st_smp::team::block_range;

use crate::machine::MachineProfile;

use super::report::{CostReport, PhaseCost};
use super::sv::SvSimOutput;

const EMPTY: u64 = u64::MAX;

/// Simulates HCS with `p` virtual processors under `machine`. Output
/// shape matches [`simulate_sv`](super::simulate_sv).
pub fn simulate_hcs(g: &CsrGraph, p: usize, machine: &MachineProfile) -> SvSimOutput {
    assert!(p > 0, "need at least one virtual processor");
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let m = edges.len();
    let mut report = CostReport::new(p, machine);
    let mut d: Vec<VertexId> = (0..n as VertexId).collect();
    let mut cand: Vec<u64> = vec![EMPTY; n];
    let mut tree_edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut iterations = 0usize;
    let mut shortcut_rounds = 0usize;
    let mut makespan_ns = 0.0f64;

    let charge_phase =
        |report: &mut CostReport, makespan_ns: &mut f64, total: usize, mem: u64, ops: u64| {
            let mut max = PhaseCost::default();
            for rank in 0..p {
                let items = block_range(rank, p, total).len() as u64;
                let cost = PhaseCost {
                    mem: mem * items,
                    ops: ops * items,
                };
                report.per_proc_mem[rank] += cost.mem;
                report.per_proc_ops[rank] += cost.ops;
                max.mem = max.mem.max(cost.mem);
                max.ops = max.ops.max(cost.ops);
            }
            *makespan_ns += max.ns(machine, p);
            report.barriers += 1;
        };

    loop {
        iterations += 1;

        // Reset candidates (contiguous sweep).
        for c in cand.iter_mut() {
            *c = EMPTY;
        }
        charge_phase(&mut report, &mut makespan_ns, n, 0, 1);

        // Min-reduction: 2 root reads + 1 fetch_min per eligible edge.
        for (e, &(u, v)) in edges.iter().enumerate() {
            let du = d[u as usize];
            let dv = d[v as usize];
            if du == dv {
                continue;
            }
            let (hi, lo) = if du > dv { (du, dv) } else { (dv, du) };
            let key = ((lo as u64) << 32) | e as u64;
            if key < cand[hi as usize] {
                cand[hi as usize] = key;
            }
        }
        charge_phase(&mut report, &mut makespan_ns, m, 3, 4);

        // Hook phase over vertices.
        let mut hooked = false;
        for v in 0..n {
            if d[v] != v as VertexId || cand[v] == EMPTY {
                continue;
            }
            let target = (cand[v] >> 32) as VertexId;
            let e = (cand[v] & 0xFFFF_FFFF) as usize;
            d[v] = target;
            tree_edges.push(edges[e]);
            hooked = true;
        }
        charge_phase(&mut report, &mut makespan_ns, n, 2, 2);

        if !hooked {
            break;
        }

        // Shortcut.
        loop {
            let mut changed = false;
            for v in 0..n {
                let dv = d[v];
                let ddv = d[dv as usize];
                if dv != ddv {
                    d[v] = ddv;
                    changed = true;
                }
            }
            shortcut_rounds += 1;
            charge_phase(&mut report, &mut makespan_ns, n, 2, 2);
            if !changed {
                break;
            }
        }
    }

    report.makespan_ns = makespan_ns;
    SvSimOutput {
        report,
        labels: d,
        tree_edges,
        iterations,
        shortcut_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_sv;
    use st_graph::gen::{random_gnm, torus2d};
    use st_graph::validate::{count_components, is_spanning_forest};

    #[test]
    fn forests_are_valid() {
        for seed in 0..3 {
            let g = random_gnm(400, 600, seed);
            let out = simulate_hcs(&g, 4, &MachineProfile::e4500());
            assert_eq!(out.tree_edges.len(), 400 - count_components(&g));
            let parents = st_core::orient::orient_forest(400, &out.tree_edges, 2);
            assert!(is_spanning_forest(&g, &parents));
        }
    }

    #[test]
    fn behaves_like_sv_the_paper_claim() {
        // "similar complexities and running time as that of SV": within
        // 3x either way across inputs and p.
        let machine = MachineProfile::e4500();
        for g in [random_gnm(1 << 12, 1 << 13, 2), torus2d(64, 64)] {
            for p in [2usize, 8] {
                let hcs_t = simulate_hcs(&g, p, &machine).report.predicted_seconds();
                let sv_t = simulate_sv(&g, p, &machine).report.predicted_seconds();
                let ratio = hcs_t / sv_t;
                assert!(
                    (0.33..3.0).contains(&ratio),
                    "HCS/SV ratio {ratio:.2} at p={p}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = random_gnm(300, 450, 7);
        let machine = MachineProfile::e4500();
        assert_eq!(
            simulate_hcs(&g, 3, &machine).report,
            simulate_hcs(&g, 3, &machine).report
        );
    }

    #[test]
    fn matches_real_hcs_tree_edges() {
        // The real implementation is deterministic; the simulator
        // mirrors its semantics exactly.
        let g = random_gnm(500, 800, 9);
        let mut sim_edges = simulate_hcs(&g, 2, &MachineProfile::e4500()).tree_edges;
        let mut real_edges = st_core::hcs::hcs_core(&g, 2).tree_edges;
        sim_edges.sort_unstable();
        real_edges.sort_unstable();
        assert_eq!(sim_edges, real_edges);
    }
}
