//! Event-driven simulation of the Bader–Cong algorithm on p virtual
//! processors.
//!
//! Each virtual processor carries its own clock; the simulator always
//! advances the earliest-clock processor (a discrete-event simulation of
//! the *asynchronous* phase-2 traversal — the paper's point is exactly
//! that there is no per-vertex synchronization, so a lock-step model
//! would overcharge it). Processing a vertex advances the owner's clock
//! by the Helman–JáJá cost of its visit; an idle processor attempts a
//! deterministic steal (from the victim with the longest queue) and, if
//! nothing is stealable, sleeps for the modeled wake-up latency —
//! exactly the shape of the real implementation's idle path.
//!
//! Phase 1 (stub walks) is sequential and charged to the base time every
//! processor starts from. Components the stub walk covers entirely are
//! absorbed without a parallel round, mirroring the real driver.
//! The makespan is the maximum clock at quiescence; barrier episodes (2
//! per parallel round, §3) are charged separately.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_graph::{CsrGraph, VertexId, NO_VERTEX};

use crate::machine::MachineProfile;

use super::report::{CostReport, PhaseCost};
use super::seq::{MEM_PER_EDGE, MEM_PER_VERTEX, OPS_PER_EDGE, OPS_PER_VERTEX};

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraversalSimConfig {
    /// Stub length target as a multiple of p.
    pub stub_factor: usize,
    /// Steal half the victim's queue (`true`, the default) or one item.
    pub steal_half: bool,
    /// Seed for the stub walk.
    pub seed: u64,
    /// Modeled latency between work appearing and a sleeping processor
    /// stealing it (condition-variable wake-up), ns.
    pub wake_latency_ns: f64,
}

impl Default for TraversalSimConfig {
    fn default() -> Self {
        Self {
            stub_factor: 2,
            steal_half: true,
            seed: 0x5eed,
            wake_latency_ns: 5_000.0,
        }
    }
}

/// Output of the simulated run.
#[derive(Clone, Debug)]
pub struct TraversalSimOutput {
    /// Cost report (T_M / T_C / B and makespan).
    pub report: CostReport,
    /// The spanning forest the simulated execution produced.
    pub parents: Vec<VertexId>,
    /// Components discovered.
    pub components: usize,
    /// Parallel rounds executed (components larger than the stub).
    pub parallel_rounds: usize,
    /// Successful steals.
    pub steals: u64,
}

/// Simulates the full algorithm (stub + work-stealing traversal, one
/// parallel round per above-stub-size component) with `p` virtual
/// processors under `machine`.
pub fn simulate_bader_cong(
    g: &CsrGraph,
    p: usize,
    cfg: TraversalSimConfig,
    machine: &MachineProfile,
) -> TraversalSimOutput {
    assert!(p > 0, "need at least one virtual processor");
    let n = g.num_vertices();
    let mut report = CostReport::new(p, machine);
    let mut parents = vec![NO_VERTEX; n];
    let mut colored = vec![false; n];
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut components = 0usize;
    let mut parallel_rounds = 0usize;
    let mut steals = 0u64;
    let mut cursor: usize = 0;
    // Every processor's clock starts each round at `base_ns` (the
    // sequential prefix so far).
    let mut base_ns = 0.0f64;

    let vertex_cost = |g: &CsrGraph, v: VertexId| -> PhaseCost {
        PhaseCost {
            mem: MEM_PER_VERTEX + MEM_PER_EDGE * g.degree(v) as u64,
            ops: OPS_PER_VERTEX + OPS_PER_EDGE * g.degree(v) as u64,
        }
    };

    loop {
        // --- Find the next component root.
        while cursor < n && colored[cursor] {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let root = cursor as VertexId;
        components += 1;

        // --- Phase 1: stub walk (DFS with backtracking) on processor 0.
        let target = (cfg.stub_factor * p).max(1);
        let mut stub: Vec<VertexId> = vec![root];
        colored[root as usize] = true;
        let mut path = vec![root];
        let mut stub_cost = vertex_cost(g, root);
        let mut candidates: Vec<VertexId> = Vec::new();
        while stub.len() < target {
            let Some(&cur) = path.last() else { break };
            candidates.clear();
            candidates.extend(
                g.neighbors(cur)
                    .iter()
                    .copied()
                    .filter(|&w| !colored[w as usize]),
            );
            if candidates.is_empty() {
                path.pop();
                continue;
            }
            let next = candidates[rng.gen_range(0..candidates.len())];
            colored[next as usize] = true;
            parents[next as usize] = cur;
            stub.push(next);
            path.push(next);
            stub_cost.add(vertex_cost(g, next));
        }
        report.per_proc_mem[0] += stub_cost.mem;
        report.per_proc_ops[0] += stub_cost.ops;
        base_ns += stub_cost.ns(machine, p);

        if stub.len() < target {
            // Component fully absorbed by the walk: no parallel round.
            continue;
        }
        parallel_rounds += 1;
        report.barriers += 2;

        // --- Phase 2: event-driven work-stealing traversal.
        let mut queues: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); p];
        for (i, &v) in stub.iter().enumerate() {
            queues[i % p].push_back(v);
        }
        let mut clocks = vec![base_ns; p];
        loop {
            if queues.iter().all(|q| q.is_empty()) {
                break;
            }
            // Advance the earliest processor.
            let rank = (0..p)
                .min_by(|&a, &b| clocks[a].total_cmp(&clocks[b]))
                .unwrap();
            if let Some(v) = queues[rank].pop_front() {
                let mut cost = PhaseCost {
                    mem: MEM_PER_VERTEX,
                    ops: OPS_PER_VERTEX,
                };
                for &w in g.neighbors(v) {
                    cost.mem += MEM_PER_EDGE;
                    cost.ops += OPS_PER_EDGE;
                    if !colored[w as usize] {
                        colored[w as usize] = true;
                        parents[w as usize] = v;
                        queues[rank].push_back(w);
                    }
                }
                report.per_proc_mem[rank] += cost.mem;
                report.per_proc_ops[rank] += cost.ops;
                clocks[rank] += cost.ns(machine, p);
            } else {
                // Idle: one deterministic steal sweep (longest victim).
                // Only queues holding at least two items are victims:
                // the head item always stays with its owner, which both
                // avoids counterproductive single-item ping-pong and
                // guarantees simulation progress (every non-empty
                // queue's owner eventually pops its head).
                let victim = (0..p)
                    .filter(|&r| r != rank && queues[r].len() >= 2)
                    .max_by_key(|&r| (queues[r].len(), std::cmp::Reverse(r)));
                let sweep = PhaseCost {
                    mem: 1,
                    ops: p as u64,
                };
                report.per_proc_mem[rank] += sweep.mem;
                report.per_proc_ops[rank] += sweep.ops;
                clocks[rank] += sweep.ns(machine, p);
                match victim {
                    Some(victim) => {
                        let available = queues[victim].len();
                        let take = if cfg.steal_half {
                            (available.div_ceil(2)).min(available - 1)
                        } else {
                            1
                        };
                        let split = available - take;
                        let tail = queues[victim].split_off(split);
                        queues[rank].extend(tail);
                        // Batch move: lock + pointer moves.
                        let move_cost = PhaseCost {
                            mem: 2 + take as u64 / 8,
                            ops: 4 + take as u64,
                        };
                        report.per_proc_mem[rank] += move_cost.mem;
                        report.per_proc_ops[rank] += move_cost.ops;
                        clocks[rank] += move_cost.ns(machine, p);
                        steals += 1;
                        // Stealing from a busy victim cannot happen
                        // before the victim has produced the work: clamp
                        // to the victim's clock.
                        clocks[rank] = clocks[rank].max(clocks[victim]);
                    }
                    None => {
                        // Nothing stealable: sleep until (modeled) wake.
                        clocks[rank] += cfg.wake_latency_ns;
                    }
                }
            }
        }
        base_ns = clocks.iter().copied().fold(base_ns, f64::max);
    }

    report.makespan_ns = base_ns;
    TraversalSimOutput {
        report,
        parents,
        components,
        parallel_rounds,
        steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineProfile;
    use crate::sim::simulate_sequential_bfs;
    use st_graph::gen::{chain, random_gnm, torus2d};
    use st_graph::validate::is_spanning_forest;

    fn sim(g: &CsrGraph, p: usize) -> TraversalSimOutput {
        let out = simulate_bader_cong(
            g,
            p,
            TraversalSimConfig::default(),
            &MachineProfile::e4500(),
        );
        assert!(
            is_spanning_forest(g, &out.parents),
            "simulated forest invalid at p = {p}"
        );
        out
    }

    #[test]
    fn forests_valid_across_p() {
        let g = random_gnm(2_000, 3_000, 1);
        for p in [1, 2, 4, 8] {
            sim(&g, p);
        }
    }

    #[test]
    fn deterministic() {
        let g = torus2d(30, 30);
        let m = MachineProfile::e4500();
        let a = simulate_bader_cong(&g, 4, TraversalSimConfig::default(), &m);
        let b = simulate_bader_cong(&g, 4, TraversalSimConfig::default(), &m);
        assert_eq!(a.report, b.report);
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn random_graph_makespan_scales_down_with_p() {
        let g = random_gnm(4_000, 6_000, 7);
        let t1 = sim(&g, 1).report.predicted_seconds();
        let t8 = sim(&g, 8).report.predicted_seconds();
        assert!(
            t8 < t1 / 3.0,
            "makespan did not parallelize: {t1:.6} -> {t8:.6}"
        );
    }

    #[test]
    fn chain_does_not_parallelize() {
        // The pathological case: only the frontier processor makes
        // progress (stolen or not), so the makespan stays serial.
        let g = chain(5_000);
        let t1 = sim(&g, 1).report.predicted_seconds();
        let t8 = sim(&g, 8).report.predicted_seconds();
        assert!(
            t8 > 0.6 * t1,
            "chain should stay near-serial: {t1:.6} -> {t8:.6}"
        );
    }

    #[test]
    fn predicted_speedup_on_random_graph_in_paper_band() {
        // Fig. 3's setting at reduced scale: m = 1.5 n, p = 8; the paper
        // reports speedups between 4.5 and 5.5.
        let n = 1 << 14;
        let g = random_gnm(n, 3 * n / 2, 5);
        let machine = MachineProfile::e4500();
        let seq_t = simulate_sequential_bfs(&g, &machine).0.predicted_seconds();
        let par_t = sim(&g, 8).report.predicted_seconds();
        let speedup = seq_t / par_t;
        assert!(
            (3.5..7.0).contains(&speedup),
            "simulated speedup {speedup:.2} outside the expected band"
        );
    }

    #[test]
    fn small_components_absorbed_without_rounds() {
        // 50 tiny components: all fit in the stub walk, so no parallel
        // rounds and no barriers.
        let mut el = st_graph::EdgeList::new(100);
        for i in 0..50u32 {
            el.push(2 * i, 2 * i + 1);
        }
        let g = CsrGraph::from_edge_list(&el);
        let out = sim(&g, 4);
        assert_eq!(out.components, 50);
        assert_eq!(out.parallel_rounds, 0);
        assert_eq!(out.report.barriers, 0);
    }

    #[test]
    fn torus_is_one_parallel_round() {
        let g = torus2d(24, 24);
        let out = sim(&g, 4);
        assert_eq!(out.components, 1);
        assert_eq!(out.parallel_rounds, 1);
        assert_eq!(out.report.barriers, 2);
    }

    #[test]
    fn steals_happen_on_imbalanced_graphs() {
        let g = st_graph::gen::star(2_000);
        let out = sim(&g, 4);
        assert!(out.steals > 0);
    }

    #[test]
    fn empty_graph() {
        let out = simulate_bader_cong(
            &CsrGraph::empty(0),
            4,
            TraversalSimConfig::default(),
            &MachineProfile::e4500(),
        );
        assert_eq!(out.components, 0);
        assert_eq!(out.report.makespan_ns, 0.0);
    }
}
