#![warn(missing_docs)]

//! # st-model — the Helman–JáJá SMP complexity model
//!
//! §3 of the paper analyses both algorithms in the SMP model of Helman &
//! JáJá: running time is the triplet **T(n, p) = ⟨T_M; T_C; B⟩** where
//! T_M is the maximum number of *non-contiguous memory accesses* by any
//! processor, T_C the maximum local computation, and B the number of
//! barrier synchronizations. "This model, in comparison with PRAM, is
//! more realistic in that it penalizes algorithms with non-contiguous
//! memory accesses that often result in cache misses and algorithms with
//! more synchronization events."
//!
//! This crate provides three layers:
//!
//! * [`machine`] — machine profiles turning the triplet into seconds
//!   (default: a Sun E4500-like profile — the paper's testbed — with its
//!   published worst-case memory latency and a bandwidth-contention
//!   term).
//! * [`analytic`] — the closed-form §3 predictions for both algorithms.
//! * [`sim`] — **deterministic instrumented executors**: step-faithful
//!   simulations of the sequential BFS, the Bader–Cong traversal, and
//!   SV on p virtual processors that count T_M / T_C / B exactly for a
//!   given input graph. These regenerate the paper's figures on a host
//!   whose physical core count (one, in this reproduction environment)
//!   cannot exhibit real parallel speedup — see DESIGN.md §4 for the
//!   substitution argument.
//!
//! The simulators produce the same spanning forests as the real
//! implementations' semantics (validated in tests), so their cost
//! counts correspond to real executions rather than to an abstraction.

pub mod analytic;
pub mod machine;
pub mod predict;
pub mod sim;

pub use machine::MachineProfile;
pub use predict::{speedup_curve, SimAlgorithm, SpeedupCurve};
pub use sim::{CostReport, PhaseCost};
