//! Machine profiles: from cost triplets to seconds.

use serde::{Deserialize, Serialize};

/// Calibration of an SMP for the Helman–JáJá model.
///
/// Predicted time of a phase is
/// `max_p(T_M · mem_ns · contention(p) + T_C · op_ns) + B · barrier_ns(p)`
/// where `contention(p) = 1 + mem_contention · (p − 1)` models the shared
/// memory bus: the E4500's processors contend for one Sun Gigaplane, and
/// the paper's own introduction flags "memory bandwidth is limited" as
/// the gap between real SMPs and the PRAM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Cost of one non-contiguous memory access, ns (a cache miss).
    pub mem_ns: f64,
    /// Cost of one unit of local computation, ns.
    pub op_ns: f64,
    /// Base cost of one software-barrier episode, ns, scaled by
    /// `barrier_per_proc_ns · p`.
    pub barrier_base_ns: f64,
    /// Additional barrier cost per participating processor, ns.
    pub barrier_per_proc_ns: f64,
    /// Per-extra-processor memory slowdown fraction (bus contention).
    pub mem_contention: f64,
}

impl MachineProfile {
    /// A Sun Enterprise 4500-like profile: 400 MHz UltraSPARC II
    /// (≈ 2.5 ns per simple operation), several-hundred-ns memory
    /// latency (the Starfire-class worst case is 450 ns; the E4500's
    /// typical miss is lower), software barriers in the tens of
    /// microseconds, and mild bus contention.
    pub fn e4500() -> Self {
        Self {
            mem_ns: 270.0,
            op_ns: 2.5,
            barrier_base_ns: 10_000.0,
            barrier_per_proc_ns: 2_000.0,
            mem_contention: 0.08,
        }
    }

    /// An idealized PRAM-like profile: uniform unit costs, free barriers.
    /// Useful in tests to reason about operation counts directly.
    pub fn pram() -> Self {
        Self {
            mem_ns: 1.0,
            op_ns: 1.0,
            barrier_base_ns: 0.0,
            barrier_per_proc_ns: 0.0,
            mem_contention: 0.0,
        }
    }

    /// Effective memory-access cost with `p` processors sharing the bus.
    pub fn effective_mem_ns(&self, p: usize) -> f64 {
        self.mem_ns * (1.0 + self.mem_contention * (p.saturating_sub(1)) as f64)
    }

    /// Cost of one barrier episode with `p` participants, ns.
    pub fn barrier_ns(&self, p: usize) -> f64 {
        self.barrier_base_ns + self.barrier_per_proc_ns * p as f64
    }
}

impl Default for MachineProfile {
    fn default() -> Self {
        Self::e4500()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_grows_with_p() {
        let m = MachineProfile::e4500();
        assert_eq!(m.effective_mem_ns(1), m.mem_ns);
        assert!(m.effective_mem_ns(8) > m.effective_mem_ns(2));
    }

    #[test]
    fn pram_is_uniform() {
        let m = MachineProfile::pram();
        assert_eq!(m.effective_mem_ns(14), 1.0);
        assert_eq!(m.barrier_ns(14), 0.0);
    }

    #[test]
    fn barrier_scales_with_team() {
        let m = MachineProfile::e4500();
        assert!(m.barrier_ns(8) > m.barrier_ns(2));
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineProfile::e4500();
        let s = serde_json::to_string(&m).unwrap();
        let m2: MachineProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(m, m2);
    }
}
