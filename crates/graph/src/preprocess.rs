//! Degree-2 chain elimination.
//!
//! §2 of the paper: "When an input graph contains vertices of degree two,
//! these vertices along with a corresponding tree edge can be eliminated
//! as a simple preprocessing step." A maximal path u − x₁ − x₂ − … − xₖ − w
//! whose internal vertices all have degree 2 contributes a forced
//! sub-path to *any* spanning forest, so the xᵢ can be removed, the path
//! replaced by a direct u − w edge, and the forced parent pointers
//! replayed after the main algorithm finishes.
//!
//! The transformation must be reversible and composable with any
//! spanning-forest algorithm, so [`eliminate_degree2`] returns a
//! [`Reduction`] that maps a forest of the reduced graph back to a forest
//! of the original graph via [`Reduction::expand_parents`].

use crate::repr::{CsrGraph, EdgeList, VertexId, NO_VERTEX};

/// The result of degree-2 elimination: the reduced graph plus everything
/// needed to reconstruct a spanning forest of the original graph.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The reduced graph (eliminated vertices removed, chains contracted
    /// to single edges).
    pub reduced: CsrGraph,
    /// For each kept vertex (reduced id) its original id.
    pub kept_original_ids: Vec<VertexId>,
    /// For each original vertex, its reduced id, or [`NO_VERTEX`] if it
    /// was eliminated.
    pub original_to_reduced: Vec<VertexId>,
    /// Contracted chains: (endpoint_u, interior vertices in order from u
    /// to w, endpoint_w), all in *original* ids. Pure cycles of degree-2
    /// vertices have `u == w` and are recorded with the full interior.
    chains: Vec<ChainRecord>,
}

#[derive(Clone, Debug)]
struct ChainRecord {
    /// Original id of the endpoint adjacent to `interior[0]`.
    u: VertexId,
    /// Interior (eliminated) vertices, original ids, ordered from u to w.
    interior: Vec<VertexId>,
    /// Original id of the endpoint adjacent to `interior.last()`.
    w: VertexId,
    /// Whether the reduced graph carries a contracted u − w edge for this
    /// chain (false when it would duplicate an existing edge or be a
    /// self-loop, in which case one interior tree edge is dropped — the
    /// "corresponding tree edge" of the paper — and the chain interior
    /// hangs off u only up to the break point).
    carried: bool,
}

/// Statistics of a reduction, for benches and EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Vertices eliminated.
    pub eliminated: usize,
    /// Chains contracted.
    pub chains: usize,
    /// Edges in the reduced graph.
    pub reduced_edges: usize,
}

impl Reduction {
    /// Summary statistics.
    pub fn stats(&self) -> ReductionStats {
        ReductionStats {
            eliminated: self
                .original_to_reduced
                .iter()
                .filter(|&&r| r == NO_VERTEX)
                .count(),
            chains: self.chains.len(),
            reduced_edges: self.reduced.num_edges(),
        }
    }

    /// Expands a spanning forest of the reduced graph (parents in reduced
    /// ids) to a spanning forest of the original graph (parents in
    /// original ids).
    pub fn expand_parents(&self, reduced_parents: &[VertexId]) -> Vec<VertexId> {
        assert_eq!(
            reduced_parents.len(),
            self.reduced.num_vertices(),
            "parent array does not match the reduced graph"
        );
        let n = self.original_to_reduced.len();
        let mut parents = vec![NO_VERTEX; n];
        // Kept vertices copy their (translated) parent.
        for (rid, &orig) in self.kept_original_ids.iter().enumerate() {
            let rp = reduced_parents[rid];
            parents[orig as usize] = if rp == NO_VERTEX {
                NO_VERTEX
            } else {
                self.kept_original_ids[rp as usize]
            };
        }
        // Replay each chain.
        for chain in &self.chains {
            if chain.carried {
                // The contracted edge u - w may or may not be a tree edge
                // of the reduced forest. If the reduced forest has
                // parent(u') = w' or parent(w') = u' via *this* contracted
                // edge we cannot distinguish it from a parallel original
                // edge; either way it is safe to route the chain as the
                // tree path, because the contracted edge exists only if
                // the chain does.
                let (u, w) = (chain.u as usize, chain.w as usize);
                let ru = self.original_to_reduced[chain.u as usize];
                let rw = self.original_to_reduced[chain.w as usize];
                let u_points_to_w = reduced_parents[ru as usize] != NO_VERTEX
                    && self.kept_original_ids[reduced_parents[ru as usize] as usize] as usize == w;
                let w_points_to_u = reduced_parents[rw as usize] != NO_VERTEX
                    && self.kept_original_ids[reduced_parents[rw as usize] as usize] as usize == u;
                if u_points_to_w && parents[u] as usize == w {
                    // Redirect u's parent through the chain toward w.
                    let mut prev = chain.w;
                    for &x in chain.interior.iter().rev() {
                        parents[x as usize] = prev;
                        prev = x;
                    }
                    parents[u] = prev;
                } else if w_points_to_u && parents[w] as usize == u {
                    let mut prev = chain.u;
                    for &x in chain.interior.iter() {
                        parents[x as usize] = prev;
                        prev = x;
                    }
                    parents[w] = prev;
                } else {
                    // Contracted edge is a non-tree edge: hang the chain
                    // off u (all interior vertices chain toward u); the
                    // final interior-w edge is the dropped non-tree edge.
                    let mut prev = chain.u;
                    for &x in chain.interior.iter() {
                        parents[x as usize] = prev;
                        prev = x;
                    }
                }
            } else {
                // No contracted edge was carried (duplicate or
                // self-loop): the chain interior always hangs off u; the
                // interior-w edge (or the cycle-closing edge) is the
                // dropped non-tree edge.
                let mut prev = chain.u;
                for &x in chain.interior.iter() {
                    parents[x as usize] = prev;
                    prev = x;
                }
            }
        }
        parents
    }
}

/// Eliminates maximal chains of degree-2 vertices from `g`.
///
/// Vertices of degree 2 whose removal is safe (interior of a path between
/// two higher/lower-degree endpoints, or part of a pure cycle) are
/// removed; each chain becomes a single u − w edge in the reduced graph
/// unless that edge would be a self-loop or a duplicate, in which case it
/// is dropped and recorded as such.
///
/// Pure cycle components where *every* vertex has degree 2 keep one
/// designated vertex as the survivor (u == w) and drop the closing edge.
pub fn eliminate_degree2(g: &CsrGraph) -> Reduction {
    let n = g.num_vertices();
    let is_interior = |v: VertexId| g.degree(v) == 2;

    let mut in_chain = vec![false; n];
    let mut chains: Vec<ChainRecord> = Vec::new();

    // Pass 1: chains anchored at non-degree-2 endpoints. Start from each
    // endpoint's degree-2 neighbor and walk until a non-degree-2 vertex.
    for u in 0..n as VertexId {
        if is_interior(u) {
            continue;
        }
        for &first in g.neighbors(u) {
            if !is_interior(first) || in_chain[first as usize] {
                continue;
            }
            // Walk the chain from u through `first`.
            let mut interior = Vec::new();
            let mut prev = u;
            let mut cur = first;
            while is_interior(cur) && !in_chain[cur as usize] {
                in_chain[cur as usize] = true;
                interior.push(cur);
                let nb = g.neighbors(cur);
                let next = if nb[0] == prev { nb[1] } else { nb[0] };
                prev = cur;
                cur = next;
            }
            if interior.is_empty() {
                continue;
            }
            // If the walk re-entered an already-claimed interior vertex
            // (possible only if two walks raced; single-threaded here, so
            // only when cur == u through a 2-cycle — impossible in simple
            // graphs), cur is the far endpoint.
            chains.push(ChainRecord {
                u,
                interior,
                w: cur,
                carried: false, // fixed up below
            });
        }
    }

    // Pass 2: pure cycles of degree-2 vertices (components never touched
    // by pass 1). Keep one survivor vertex per cycle.
    for s in 0..n as VertexId {
        if !is_interior(s) || in_chain[s as usize] {
            continue;
        }
        // Walk the cycle starting at s; s is the survivor.
        let mut interior = Vec::new();
        let mut prev = s;
        let mut cur = g.neighbors(s)[0];
        while cur != s {
            debug_assert!(is_interior(cur));
            in_chain[cur as usize] = true;
            interior.push(cur);
            let nb = g.neighbors(cur);
            let next = if nb[0] == prev { nb[1] } else { nb[0] };
            prev = cur;
            cur = next;
        }
        // Survivor keeps u == w == s; the closing edge is dropped.
        chains.push(ChainRecord {
            u: s,
            interior,
            w: s,
            carried: false,
        });
    }

    // Build the reduced vertex set.
    let mut original_to_reduced = vec![NO_VERTEX; n];
    let mut kept_original_ids = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        if !in_chain[v as usize] {
            original_to_reduced[v as usize] = kept_original_ids.len() as VertexId;
            kept_original_ids.push(v);
        }
    }

    // Build reduced edges: all original edges between kept vertices, plus
    // one contracted edge per chain when it is simple and new.
    let rn = kept_original_ids.len();
    let mut el = EdgeList::with_capacity(rn, g.num_edges());
    for (a, b) in g.edges() {
        let ra = original_to_reduced[a as usize];
        let rb = original_to_reduced[b as usize];
        if ra != NO_VERTEX && rb != NO_VERTEX {
            el.push(ra, rb);
        }
    }
    let mut existing: std::collections::HashSet<(VertexId, VertexId)> = el
        .iter()
        .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    for chain in &mut chains {
        let ru = original_to_reduced[chain.u as usize];
        let rw = original_to_reduced[chain.w as usize];
        if ru == rw {
            continue; // cycle back to the same kept vertex: drop
        }
        let key = if ru < rw { (ru, rw) } else { (rw, ru) };
        if existing.insert(key) {
            el.push(ru, rw);
            chain.carried = true;
        }
    }
    el.dedup_simple();
    let reduced = CsrGraph::from_edge_list(&el);

    Reduction {
        reduced,
        kept_original_ids,
        original_to_reduced,
        chains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain as chain_graph, cycle, grid2d, random_connected, torus2d};
    use crate::validate::{check_spanning_forest, count_components, is_spanning_forest};

    /// BFS spanning forest of an arbitrary graph (reference).
    fn bfs_forest(g: &CsrGraph) -> Vec<VertexId> {
        let n = g.num_vertices();
        let mut parents = vec![NO_VERTEX; n];
        let mut seen = vec![false; n];
        let mut q = std::collections::VecDeque::new();
        for s in 0..n as VertexId {
            if seen[s as usize] {
                continue;
            }
            seen[s as usize] = true;
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                for &w in g.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        parents[w as usize] = v;
                        q.push_back(w);
                    }
                }
            }
        }
        parents
    }

    fn roundtrip(g: &CsrGraph) {
        let red = eliminate_degree2(g);
        assert_eq!(
            count_components(&red.reduced),
            count_components(g),
            "reduction must preserve component count"
        );
        let reduced_parents = bfs_forest(&red.reduced);
        assert!(is_spanning_forest(&red.reduced, &reduced_parents));
        let full = red.expand_parents(&reduced_parents);
        let check = check_spanning_forest(g, &full);
        assert!(check.is_valid(), "expanded forest invalid: {check:?}");
    }

    #[test]
    fn pure_chain_reduces_to_endpoints() {
        let g = chain_graph(10);
        let red = eliminate_degree2(&g);
        // Interior 1..8 eliminated, endpoints 0 and 9 kept.
        assert_eq!(red.reduced.num_vertices(), 2);
        assert_eq!(red.reduced.num_edges(), 1);
        assert_eq!(red.stats().eliminated, 8);
        roundtrip(&g);
    }

    #[test]
    fn cycle_reduces_to_survivor() {
        let g = cycle(12);
        let red = eliminate_degree2(&g);
        assert_eq!(red.reduced.num_vertices(), 1);
        assert_eq!(red.reduced.num_edges(), 0);
        roundtrip(&g);
    }

    #[test]
    fn torus_has_no_degree2() {
        let g = torus2d(4, 4);
        let red = eliminate_degree2(&g);
        assert_eq!(red.reduced.num_vertices(), g.num_vertices());
        assert_eq!(red.reduced.num_edges(), g.num_edges());
        roundtrip(&g);
    }

    #[test]
    fn lollipop_roundtrip() {
        // Triangle 0-1-2 with a tail 2-3-4-5.
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(2, 3);
        el.push(3, 4);
        el.push(4, 5);
        let g = CsrGraph::from_edge_list(&el);
        let red = eliminate_degree2(&g);
        // 3 and 4 are interior; 5 is a leaf (degree 1) kept; the triangle
        // vertices have degrees 2, 2, 3 — wait: 0 and 1 have degree 2, so
        // they are eliminated too, chain 2-0-1-2 contracts around the
        // triangle.
        assert!(red.stats().eliminated >= 2);
        roundtrip(&g);
    }

    #[test]
    fn theta_graph_duplicate_contraction() {
        // Two parallel chains between hubs 0 and 5:
        // 0-1-2-5 and 0-3-4-5, plus a direct edge 0-5. Contracting both
        // chains would create duplicate 0-5 edges.
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 5);
        el.push(0, 3);
        el.push(3, 4);
        el.push(4, 5);
        el.push(0, 5);
        let g = CsrGraph::from_edge_list(&el);
        let red = eliminate_degree2(&g);
        assert_eq!(red.reduced.num_vertices(), 2);
        // Only one 0-5 edge may survive in the simple reduced graph.
        assert_eq!(red.reduced.num_edges(), 1);
        roundtrip(&g);
    }

    #[test]
    fn two_vertex_cycle_chain() {
        // Path of length 2 between the same endpoints: 0-1-2, 0-2 edge.
        // Vertex 1 contracts onto an existing 0-2 edge.
        let g = cycle(3);
        roundtrip(&g);
    }

    #[test]
    fn disconnected_mixture_roundtrip() {
        // A chain component, a cycle component, and an isolated vertex.
        let mut el = EdgeList::new(10);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 3); // chain 0-1-2-3
        el.push(4, 5);
        el.push(5, 6);
        el.push(6, 4); // triangle 4-5-6
                       // 7, 8, 9 isolated
        let g = CsrGraph::from_edge_list(&el);
        roundtrip(&g);
    }

    #[test]
    fn random_graphs_roundtrip() {
        for seed in 0..10 {
            let g = random_connected(60, 20, seed);
            roundtrip(&g);
        }
    }

    #[test]
    fn grid_roundtrip() {
        roundtrip(&grid2d(7, 9));
    }

    #[test]
    fn star_of_chains_roundtrip() {
        // Hub 0 with three chains of length 3 hanging off it.
        let mut el = EdgeList::new(10);
        let mut next = 1u32;
        for _ in 0..3 {
            el.push(0, next);
            el.push(next, next + 1);
            el.push(next + 1, next + 2);
            next += 3;
        }
        let g = CsrGraph::from_edge_list(&el);
        let red = eliminate_degree2(&g);
        // Chain interiors eliminated; leaves kept (degree 1).
        assert!(red.stats().eliminated == 6);
        roundtrip(&g);
    }
}
