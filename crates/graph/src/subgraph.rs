//! Subgraph extraction.
//!
//! Applications routinely run the spanning-tree machinery on a piece of
//! a larger graph — the giant component of a damaged mesh, one domain of
//! a hierarchical network — so the substrate provides induced subgraphs
//! with id mappings both ways.

use crate::repr::{CsrGraph, EdgeList, VertexId, NO_VERTEX};
use crate::validate::component_labels;

/// An induced subgraph with its vertex-id mappings.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph (vertices renumbered `0..k`).
    pub graph: CsrGraph,
    /// For each subgraph vertex, its id in the original graph.
    pub to_original: Vec<VertexId>,
    /// For each original vertex, its subgraph id, or [`NO_VERTEX`].
    pub from_original: Vec<VertexId>,
}

impl Subgraph {
    /// Translates a parent array computed on the subgraph back to
    /// original ids (entries for vertices outside the subgraph are
    /// [`NO_VERTEX`]).
    pub fn lift_parents(&self, sub_parents: &[VertexId]) -> Vec<VertexId> {
        assert_eq!(sub_parents.len(), self.graph.num_vertices());
        let mut out = vec![NO_VERTEX; self.from_original.len()];
        for (sv, &orig) in self.to_original.iter().enumerate() {
            let sp = sub_parents[sv];
            out[orig as usize] = if sp == NO_VERTEX {
                NO_VERTEX
            } else {
                self.to_original[sp as usize]
            };
        }
        out
    }
}

/// The subgraph induced by `vertices` (duplicates ignored; order defines
/// the new ids).
pub fn induced_subgraph(g: &CsrGraph, vertices: &[VertexId]) -> Subgraph {
    let n = g.num_vertices();
    let mut from_original = vec![NO_VERTEX; n];
    let mut to_original = Vec::with_capacity(vertices.len());
    for &v in vertices {
        assert!((v as usize) < n, "vertex {v} out of range");
        if from_original[v as usize] == NO_VERTEX {
            from_original[v as usize] = to_original.len() as VertexId;
            to_original.push(v);
        }
    }
    let mut el = EdgeList::new(to_original.len());
    for &v in &to_original {
        let sv = from_original[v as usize];
        for &w in g.neighbors(v) {
            let sw = from_original[w as usize];
            if sw != NO_VERTEX && sv < sw {
                el.push(sv, sw);
            }
        }
    }
    Subgraph {
        graph: CsrGraph::from_edge_list(&el),
        to_original,
        from_original,
    }
}

/// The subgraph induced by the largest connected component of `g`
/// (ties broken toward the smaller component label). Returns an empty
/// subgraph for the empty graph.
pub fn largest_component(g: &CsrGraph) -> Subgraph {
    let labels = component_labels(g);
    let num = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    if num == 0 {
        return induced_subgraph(g, &[]);
    }
    let mut sizes = vec![0usize; num];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap();
    let members: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| labels[v as usize] == best)
        .collect();
    induced_subgraph(g, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, random_gnm, torus2d};
    use crate::validate::{count_components, is_spanning_forest};

    #[test]
    fn induced_on_a_triangle_plus_tail() {
        // Triangle 0-1-2 with a tail 2-3; induce on {0, 1, 2}.
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(2, 3);
        let g = CsrGraph::from_edge_list(&el);
        let s = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(s.graph.num_vertices(), 3);
        assert_eq!(s.graph.num_edges(), 3);
        assert_eq!(s.to_original, vec![0, 1, 2]);
        assert_eq!(s.from_original[3], NO_VERTEX);
    }

    #[test]
    fn induced_respects_ordering_and_duplicates() {
        let g = chain(5);
        let s = induced_subgraph(&g, &[3, 1, 3, 2]);
        assert_eq!(s.to_original, vec![3, 1, 2]);
        // Edges 1-2 and 2-3 survive.
        assert_eq!(s.graph.num_edges(), 2);
    }

    #[test]
    fn largest_component_of_disconnected() {
        let g = random_gnm(300, 200, 5);
        let s = largest_component(&g);
        assert_eq!(count_components(&s.graph), 1);
        let labels = component_labels(&g);
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let max = sizes.values().copied().max().unwrap();
        assert_eq!(s.graph.num_vertices(), max);
    }

    #[test]
    fn largest_component_of_connected_is_whole_graph() {
        let g = torus2d(6, 6);
        let s = largest_component(&g);
        assert_eq!(s.graph.num_vertices(), 36);
        assert_eq!(s.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn lift_parents_roundtrip() {
        let g = random_gnm(200, 150, 8);
        let s = largest_component(&g);
        // A BFS forest of the subgraph lifts to valid parents on the
        // original ids for the component's vertices.
        let mut parents_sub = vec![NO_VERTEX; s.graph.num_vertices()];
        let mut seen = vec![false; s.graph.num_vertices()];
        let mut q = std::collections::VecDeque::new();
        seen[0] = true;
        q.push_back(0 as VertexId);
        while let Some(v) = q.pop_front() {
            for &w in s.graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parents_sub[w as usize] = v;
                    q.push_back(w);
                }
            }
        }
        assert!(is_spanning_forest(&s.graph, &parents_sub));
        let lifted = s.lift_parents(&parents_sub);
        // Every lifted edge is a real original edge.
        for (v, &p) in lifted.iter().enumerate() {
            if p != NO_VERTEX {
                assert!(g.neighbors(v as VertexId).contains(&p));
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let s = induced_subgraph(&CsrGraph::empty(3), &[]);
        assert_eq!(s.graph.num_vertices(), 0);
        let s = largest_component(&CsrGraph::empty(0));
        assert_eq!(s.graph.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn induced_rejects_bad_ids() {
        induced_subgraph(&chain(3), &[5]);
    }
}
