//! Correctness oracles: connectivity reference and spanning-tree/forest
//! verification.
//!
//! Every algorithm in the workspace is checked against these oracles in
//! unit, integration, and property tests. Verification is independent of
//! how a tree was produced: it only needs the graph and a parent array.

use crate::repr::{CsrGraph, VertexId, NO_VERTEX};

/// Labels each vertex with a component id in `0..num_components`
/// (sequential BFS sweep — the reference implementation).
pub fn component_labels(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = next_label;
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next_label;
                    queue.push_back(w);
                }
            }
        }
        next_label += 1;
    }
    label
}

/// Number of connected components.
pub fn count_components(g: &CsrGraph) -> usize {
    let labels = component_labels(g);
    labels.iter().copied().max().map_or(0, |m| m as usize + 1)
}

/// Outcome of a spanning-forest check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForestCheck {
    /// The parent array encodes a valid spanning forest.
    Valid {
        /// Number of roots (= number of trees = number of components).
        roots: usize,
        /// Number of tree edges (= n − roots).
        tree_edges: usize,
    },
    /// The parent array is not a valid spanning forest; the string
    /// explains the first violation found.
    Invalid(String),
}

impl ForestCheck {
    /// True for [`ForestCheck::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, ForestCheck::Valid { .. })
    }
}

/// Verifies that `parents` encodes a spanning forest of `g`.
///
/// A valid spanning forest satisfies, with R = #{v : parents\[v\] =
/// [`NO_VERTEX`]}:
///
/// 1. `parents.len() == n`;
/// 2. every non-root parent pointer is a real edge of `g`;
/// 3. parent chains are acyclic (every chain ends at a root);
/// 4. R equals the number of connected components of `g`.
///
/// Conditions 2–3 make the parent edges a forest with one tree per root,
/// each tree confined to a single component; condition 4 then forces
/// exactly one tree per component, i.e. every tree spans its component.
pub fn check_spanning_forest(g: &CsrGraph, parents: &[VertexId]) -> ForestCheck {
    let n = g.num_vertices();
    if parents.len() != n {
        return ForestCheck::Invalid(format!(
            "parent array has length {} but graph has {} vertices",
            parents.len(),
            n
        ));
    }

    let mut roots = 0usize;
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        let p = parents[v];
        if p == NO_VERTEX {
            roots += 1;
            continue;
        }
        if p as usize >= n {
            return ForestCheck::Invalid(format!("vertex {v} has out-of-range parent {p}"));
        }
        if p as usize == v {
            return ForestCheck::Invalid(format!("vertex {v} is its own parent"));
        }
        if !g.neighbors(v as VertexId).contains(&p) {
            return ForestCheck::Invalid(format!(
                "parent edge ({v}, {p}) does not exist in the graph"
            ));
        }
    }

    // Cycle detection along parent chains: 0 = unvisited, 1 = on the
    // current chain, 2 = known-good.
    let mut state = vec![0u8; n];
    let mut chain: Vec<usize> = Vec::new();
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        chain.clear();
        let mut v = start;
        loop {
            if state[v] == 1 {
                return ForestCheck::Invalid(format!("parent chain cycles at vertex {v}"));
            }
            if state[v] == 2 {
                break;
            }
            state[v] = 1;
            chain.push(v);
            let p = parents[v];
            if p == NO_VERTEX {
                break;
            }
            v = p as usize;
        }
        for &u in &chain {
            state[u] = 2;
        }
    }

    let components = count_components(g);
    if roots != components {
        return ForestCheck::Invalid(format!(
            "forest has {roots} roots but the graph has {components} components"
        ));
    }
    ForestCheck::Valid {
        roots,
        tree_edges: n - roots,
    }
}

/// True when `parents` encodes a spanning forest of `g`.
pub fn is_spanning_forest(g: &CsrGraph, parents: &[VertexId]) -> bool {
    check_spanning_forest(g, parents).is_valid()
}

/// True when `parents` encodes a spanning *tree* of `g` rooted at `root`:
/// the graph is connected, `root` is the unique root, and the forest
/// check passes.
pub fn is_spanning_tree(g: &CsrGraph, parents: &[VertexId], root: VertexId) -> bool {
    if (root as usize) >= g.num_vertices() {
        return false;
    }
    if parents.len() != g.num_vertices() || parents[root as usize] != NO_VERTEX {
        return false;
    }
    match check_spanning_forest(g, parents) {
        ForestCheck::Valid { roots, .. } => roots == 1,
        ForestCheck::Invalid(_) => false,
    }
}

/// Depth of every vertex in the forest (root depth 0); useful for
/// diagnosing tree shape in benches and tests.
///
/// # Panics
///
/// Panics if the parent chains cycle; verify with
/// [`check_spanning_forest`] first.
#[allow(clippy::needless_range_loop)]
pub fn forest_depths(parents: &[VertexId]) -> Vec<u32> {
    let n = parents.len();
    let mut depth = vec![u32::MAX; n];
    let mut chain = Vec::new();
    for start in 0..n {
        if depth[start] != u32::MAX {
            continue;
        }
        chain.clear();
        let mut v = start;
        // Walk up the parent chain until a vertex of known depth or a
        // root, collecting the unknown vertices along the way.
        let mut next_depth = loop {
            if depth[v] != u32::MAX {
                break depth[v] + 1;
            }
            chain.push(v);
            assert!(chain.len() <= n, "parent chains cycle; not a forest");
            let p = parents[v];
            if p == NO_VERTEX {
                depth[v] = 0;
                chain.pop();
                break 1;
            }
            v = p as usize;
        };
        for &u in chain.iter().rev() {
            depth[u] = next_depth;
            next_depth += 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, complete, torus2d};
    use crate::repr::EdgeList;

    fn path4() -> CsrGraph {
        chain(4)
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(2, 3);
        // 4, 5 isolated
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(count_components(&g), 4);
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn components_of_empty_graph() {
        assert_eq!(count_components(&CsrGraph::empty(0)), 0);
        assert_eq!(count_components(&CsrGraph::empty(3)), 3);
    }

    #[test]
    fn valid_tree_on_path() {
        let g = path4();
        let parents = vec![NO_VERTEX, 0, 1, 2];
        assert!(is_spanning_tree(&g, &parents, 0));
        assert!(is_spanning_forest(&g, &parents));
        assert_eq!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Valid {
                roots: 1,
                tree_edges: 3
            }
        );
    }

    #[test]
    fn rejects_wrong_root() {
        let g = path4();
        let parents = vec![NO_VERTEX, 0, 1, 2];
        assert!(!is_spanning_tree(&g, &parents, 1));
        assert!(!is_spanning_tree(&g, &parents, 99));
    }

    #[test]
    fn rejects_non_edge_parent() {
        let g = path4();
        let parents = vec![NO_VERTEX, 0, 0, 2]; // (2, 0) is not an edge
        assert!(!is_spanning_forest(&g, &parents));
        assert!(matches!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Invalid(msg) if msg.contains("does not exist")
        ));
    }

    #[test]
    fn rejects_cycle() {
        let g = crate::gen::cycle(3);
        let parents = vec![1, 2, 0];
        assert!(matches!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Invalid(msg) if msg.contains("cycles")
        ));
    }

    #[test]
    fn rejects_self_parent() {
        let g = path4();
        let parents = vec![NO_VERTEX, 1, 1, 2];
        assert!(matches!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Invalid(msg) if msg.contains("own parent")
        ));
    }

    #[test]
    fn rejects_too_many_roots() {
        let g = path4();
        let parents = vec![NO_VERTEX, 0, NO_VERTEX, 2]; // 2 roots, 1 component
        assert!(matches!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Invalid(msg) if msg.contains("roots")
        ));
    }

    #[test]
    fn rejects_wrong_length() {
        let g = path4();
        assert!(!is_spanning_forest(&g, &[NO_VERTEX, 0, 1]));
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut el = EdgeList::new(5);
        el.push(0, 1);
        el.push(2, 3);
        let g = CsrGraph::from_edge_list(&el);
        let parents = vec![NO_VERTEX, 0, NO_VERTEX, 2, NO_VERTEX];
        assert_eq!(
            check_spanning_forest(&g, &parents),
            ForestCheck::Valid {
                roots: 3,
                tree_edges: 2
            }
        );
        // A spanning tree claim must fail on a disconnected graph.
        assert!(!is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn complete_graph_star_tree() {
        let g = complete(6);
        let mut parents = vec![0 as VertexId; 6];
        parents[0] = NO_VERTEX;
        assert!(is_spanning_tree(&g, &parents, 0));
        let depths = forest_depths(&parents);
        assert_eq!(depths, vec![0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn torus_bfs_tree_is_valid() {
        // Build a BFS tree by hand with the reference traversal.
        let g = torus2d(5, 5);
        let mut parents = vec![NO_VERTEX; 25];
        let mut seen = [false; 25];
        let mut q = std::collections::VecDeque::new();
        seen[0] = true;
        q.push_back(0 as VertexId);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parents[w as usize] = v;
                    q.push_back(w);
                }
            }
        }
        assert!(is_spanning_tree(&g, &parents, 0));
        let depths = forest_depths(&parents);
        // Torus 5x5 has eccentricity 4 from any vertex.
        assert_eq!(*depths.iter().max().unwrap(), 4);
    }

    #[test]
    fn depths_on_path() {
        let parents = vec![NO_VERTEX, 0, 1, 2];
        assert_eq!(forest_depths(&parents), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn depths_panic_on_cycle() {
        forest_depths(&[1, 0]);
    }
}
