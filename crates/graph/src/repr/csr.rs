//! Compressed sparse row (adjacency array) graph.

use super::storage::SharedSlice;
use super::{EdgeList, VertexId};

/// An immutable, undirected graph in compressed-sparse-row form.
///
/// ```
/// use st_graph::{CsrGraph, EdgeList};
///
/// let mut el = EdgeList::new(3);
/// el.push(0, 1);
/// el.push(1, 2);
/// let g = CsrGraph::from_edge_list(&el);
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
///
/// Each undirected edge {u, v} is stored twice (u → v and v → u), so the
/// `targets` array has length 2 m. The representation is the classic
/// "adjacency list in two flat arrays" layout used by the paper's C
/// implementation: one non-contiguous memory access reaches a vertex's
/// offset, and its neighbor list is then a contiguous scan — the access
/// pattern the Helman–JáJá analysis in §3 of the paper counts.
/// The arrays live in [`SharedSlice`] storage: owned allocations for
/// every constructive path, or zero-copy windows into a shared `mmap`
/// region when the graph came from [`crate::io::load_binary`] — the
/// catalog's instant-startup path. Cloning a mapped graph is O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v + 1]` indexes `targets` for vertex `v`;
    /// length n + 1.
    offsets: SharedSlice<usize>,
    /// Concatenated neighbor lists; length 2 m.
    targets: SharedSlice<VertexId>,
    /// Number of undirected edges m.
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a graph from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are not a structurally valid CSR: `offsets`
    /// must be non-empty, non-decreasing, start at 0 and end at
    /// `targets.len()`, and every target must be `< n`.
    pub fn from_raw_parts(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        match Self::try_from_shared_parts(offsets.into(), targets.into()) {
            Ok(g) => g,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Builds a graph from pre-validated shared storage, checking the
    /// same structural invariants as [`from_raw_parts`](Self::from_raw_parts)
    /// but reporting violations as an error instead of panicking — the
    /// shape the binary loader needs for untrusted files.
    pub(crate) fn try_from_shared_parts(
        offsets: SharedSlice<usize>,
        targets: SharedSlice<VertexId>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must have length n + 1 >= 1".into());
        }
        if offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err("offsets must end at targets.len()".into());
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        let n = offsets.len() - 1;
        if !targets.iter().all(|&t| (t as usize) < n) {
            return Err("all targets must be < n".into());
        }
        if !targets.len().is_multiple_of(2) {
            return Err("undirected CSR must contain an even number of directed arcs".into());
        }
        let num_edges = targets.len() / 2;
        Ok(Self {
            offsets,
            targets,
            num_edges,
        })
    }

    /// True when both CSR arrays alias an `mmap`ed file (the zero-copy
    /// load path) rather than owned heap memory.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() && self.targets.is_mapped()
    }

    /// Builds the CSR form of an edge list via counting sort.
    ///
    /// The edge list is interpreted as undirected: each pair (u, v) creates
    /// arcs u → v and v → u. Duplicate edges and self-loops are kept as-is;
    /// use [`GraphBuilder`](super::GraphBuilder) for deduplication.
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let n = edges.num_vertices();
        let mut degree = vec![0usize; n];
        for &(u, v) in edges.iter() {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; offsets[n]];
        for &(u, v) in edges.iter() {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
            num_edges: edges.len(),
        }
    }

    /// Parallel CSR construction from an edge list (rayon).
    ///
    /// Same graph as [`from_edge_list`](Self::from_edge_list) with
    /// canonically sorted neighbor lists, built in three data-parallel
    /// passes: per-chunk degree histograms merged into offsets, then
    /// atomic-cursor placement. Worthwhile from roughly a million edges;
    /// below that the sequential counting sort wins.
    pub fn from_edge_list_parallel(edges: &EdgeList) -> Self {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let n = edges.num_vertices();
        let pairs = edges.as_slice();
        const CHUNK: usize = 1 << 16;

        // Pass 1: per-chunk degree histograms, reduced.
        let degree: Vec<usize> = pairs
            .par_chunks(CHUNK)
            .fold(
                || vec![0usize; n],
                |mut acc, chunk| {
                    for &(u, v) in chunk {
                        acc[u as usize] += 1;
                        acc[v as usize] += 1;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0usize; n],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x += *y;
                    }
                    a
                },
            );

        // Pass 2: prefix sum (sequential; O(n)).
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }

        // Pass 3: placement with atomic per-vertex cursors.
        struct SendPtr(*mut VertexId);
        // SAFETY: the raw pointer is only used for disjoint writes (see
        // below), so sharing it across the rayon workers is sound.
        unsafe impl Sync for SendPtr {}
        let cursor: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
        let mut targets = vec![0 as VertexId; offsets[n]];
        {
            let targets_ptr = SendPtr(targets.as_mut_ptr());
            pairs.par_chunks(CHUNK).for_each(|chunk| {
                let targets_ptr = &targets_ptr;
                for &(u, v) in chunk {
                    let iu = cursor[u as usize].fetch_add(1, Ordering::Relaxed);
                    let iv = cursor[v as usize].fetch_add(1, Ordering::Relaxed);
                    // SAFETY: every write lands at a unique index — each
                    // vertex's cursor starts at its offset and fetch_add
                    // hands out distinct slots within that vertex's
                    // exclusive [offsets[v], offsets[v + 1]) range, and
                    // the total slot count equals targets.len().
                    unsafe {
                        *targets_ptr.0.add(iu) = v;
                        *targets_ptr.0.add(iv) = u;
                    }
                }
            });
        }
        // Neighbor order differs from the sequential build (placement
        // races between chunks), so canonicalize the lists before the
        // arrays move into immutable shared storage.
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            targets[lo..hi].sort_unstable();
        }
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
            num_edges: edges.len(),
        }
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0usize; n + 1].into(),
            targets: Vec::new().into(),
            num_edges: 0,
        }
    }

    /// Number of vertices n.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges m.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v` (self-loops count twice, matching the two arcs
    /// they occupy).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbor list of `v` as a contiguous slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Hints the CPU to pull the start of `v`'s neighbor list into cache.
    ///
    /// The traversal engine calls this for the *next* frontier vertex
    /// while it expands the current one, hiding the CSR row's memory
    /// latency behind useful work. Purely a performance hint: a no-op on
    /// non-x86_64 targets and for out-of-range ids, and never required
    /// for correctness.
    #[inline]
    pub fn prefetch_neighbors(&self, v: VertexId) {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let lo = self.offsets[v];
            if lo < self.targets.len() {
                // SAFETY: `lo < targets.len()` makes the address in
                // bounds, and prefetch has no architectural effect beyond
                // the cache regardless.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        self.targets.as_ptr().add(lo) as *const i8,
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
    }

    /// Rebuilds both CSR arrays in fresh allocations advised with
    /// `madvise(MADV_HUGEPAGE)` *before* the copy-in, so the copy — the
    /// first touch — faults 2 MiB transparent huge pages directly.
    ///
    /// At traversal scale the `targets` array dominates the workload's
    /// random reads; backing it with huge pages cuts TLB misses on both
    /// traversal directions. Returns the rehomed graph and whether at
    /// least one array accepted the advice (graphs smaller than a huge
    /// page and non-Linux hosts report `false`; the graph itself is
    /// identical either way).
    pub fn into_hugepage_backed(self) -> (Self, bool) {
        fn rehome<T: Copy>(src: &[T]) -> (SharedSlice<T>, bool) {
            let mut v: Vec<T> = Vec::with_capacity(src.len());
            let advised =
                st_smp::mem::advise_hugepages(v.as_ptr() as *const u8, std::mem::size_of_val(src));
            v.extend_from_slice(src);
            (v.into(), advised)
        }
        let (offsets, offsets_advised) = rehome(&self.offsets);
        let (targets, targets_advised) = rehome(&self.targets);
        (
            Self {
                offsets,
                targets,
                num_edges: self.num_edges,
            },
            offsets_advised || targets_advised,
        )
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over each undirected edge exactly once, as (u, v) with
    /// u ≤ v.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v)
                .map(move |&v| (u, v))
        })
    }

    /// The raw offsets array (length n + 1). Exposed for the cost-model
    /// executor, which replays memory accesses against the real layout.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated targets array (length 2 m).
    #[inline]
    pub fn raw_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// True when the stored arc multiset is symmetric (every u → v has a
    /// matching v → u). All construction paths guarantee this; the check is
    /// O(m log m) and intended for tests.
    pub fn is_symmetric(&self) -> bool {
        let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.targets.len());
        for u in self.vertices() {
            for &v in self.neighbors(u) {
                arcs.push((u, v));
            }
        }
        let mut forward = arcs.clone();
        forward.sort_unstable();
        let mut backward: Vec<(VertexId, VertexId)> =
            arcs.into_iter().map(|(u, v)| (v, u)).collect();
        backward.sort_unstable();
        forward == backward
    }

    /// True when no vertex lists itself as a neighbor.
    pub fn has_no_self_loops(&self) -> bool {
        self.vertices()
            .all(|u| self.neighbors(u).iter().all(|&v| v != u))
    }

    /// True when every neighbor list is duplicate-free (simple graph).
    pub fn has_no_parallel_edges(&self) -> bool {
        let mut scratch = Vec::new();
        for u in self.vertices() {
            scratch.clear();
            scratch.extend_from_slice(self.neighbors(u));
            scratch.sort_unstable();
            if scratch.windows(2).any(|w| w[0] == w[1]) {
                return false;
            }
        }
        true
    }

    /// Summary degree statistics, useful for workload characterization in
    /// the benchmark harness.
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.num_vertices();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut isolated = 0usize;
        let mut degree_two = 0usize;
        for v in self.vertices() {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            if d == 0 {
                isolated += 1;
            }
            if d == 2 {
                degree_two += 1;
            }
        }
        DegreeStats {
            min,
            max,
            mean: 2.0 * self.num_edges as f64 / n as f64,
            isolated,
            degree_two,
        }
    }

    /// Converts back to an edge list with each undirected edge listed once.
    pub fn to_edge_list(&self) -> EdgeList {
        let mut out = EdgeList::new(self.num_vertices());
        for (u, v) in self.edges() {
            out.push(u, v);
        }
        out
    }
}

/// Degree summary of a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree 2m / n.
    pub mean: f64,
    /// Number of degree-0 vertices.
    pub isolated: usize,
    /// Number of degree-2 vertices (candidates for chain elimination).
    pub degree_two: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn triangle_shape() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
    }

    #[test]
    fn neighbors_are_correct() {
        let g = triangle();
        let mut n0: Vec<_> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.degree_stats(), DegreeStats::default());
    }

    #[test]
    fn from_raw_parts_roundtrip() {
        let g = triangle();
        let g2 = CsrGraph::from_raw_parts(g.raw_offsets().to_vec(), g.raw_targets().to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn from_raw_parts_rejects_bad_start() {
        CsrGraph::from_raw_parts(vec![1, 2], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_parts_rejects_decreasing() {
        CsrGraph::from_raw_parts(vec![0, 2, 1, 2], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "all targets must be < n")]
    fn from_raw_parts_rejects_out_of_range_target() {
        CsrGraph::from_raw_parts(vec![0, 1, 2], vec![5, 0]);
    }

    #[test]
    fn degree_stats_on_path() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 3);
        let g = CsrGraph::from_edge_list(&el);
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert_eq!(s.degree_two, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        for seed in 0..4u64 {
            let g = crate::gen::random_gnm(2_000, 6_000, seed);
            let el = g.to_edge_list();
            let par = CsrGraph::from_edge_list_parallel(&el);
            assert_eq!(par.num_vertices(), g.num_vertices());
            assert_eq!(par.num_edges(), g.num_edges());
            assert!(par.is_symmetric());
            // Same adjacency as the sequential build, list by list.
            for v in g.vertices() {
                let mut a = g.neighbors(v).to_vec();
                a.sort_unstable();
                assert_eq!(par.neighbors(v), &a[..], "vertex {v}");
            }
        }
    }

    #[test]
    fn parallel_build_edge_cases() {
        let empty = CsrGraph::from_edge_list_parallel(&EdgeList::new(5));
        assert_eq!(empty.num_vertices(), 5);
        assert_eq!(empty.num_edges(), 0);

        let mut el = EdgeList::new(2);
        el.push(0, 1);
        let tiny = CsrGraph::from_edge_list_parallel(&el);
        assert_eq!(tiny.num_edges(), 1);
        assert_eq!(tiny.neighbors(0), &[1]);
    }

    #[test]
    fn hugepage_rehoming_preserves_the_graph() {
        let g = triangle();
        let (h, _advised) = g.clone().into_hugepage_backed();
        assert_eq!(h, g);

        // Large enough that targets spans a huge page: advice must be
        // accepted on Linux and the graph must survive byte-for-byte.
        let n = 300_000usize;
        let mut el = EdgeList::new(n);
        for v in 0..n as VertexId - 1 {
            el.push(v, v + 1);
        }
        let big = CsrGraph::from_edge_list(&el);
        let (rehomed, advised) = big.clone().into_hugepage_backed();
        assert_eq!(rehomed, big);
        if cfg!(target_os = "linux") {
            assert!(advised, "multi-megabyte CSR should accept THP advice");
        }
    }

    #[test]
    fn to_edge_list_roundtrip() {
        let g = triangle();
        let el = g.to_edge_list();
        let g2 = CsrGraph::from_edge_list(&el);
        assert_eq!(g.num_edges(), g2.num_edges());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
