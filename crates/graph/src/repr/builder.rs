//! Deduplicating graph builder.

use super::{CsrGraph, EdgeList, VertexId};

/// Accumulates undirected edges and produces a simple [`CsrGraph`]
/// (no self-loops, no parallel edges).
///
/// Generators that may produce duplicates (random G(n, m) candidates,
/// geometric k-NN where u's nearest neighbor also selects u, geographic
/// models, …) all funnel through this builder so that every experiment
/// input is a simple graph, as the paper's generators produce.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    edges: EdgeList,
}

impl GraphBuilder {
    /// A builder over `n` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            edges: EdgeList::new(num_vertices),
        }
    }

    /// A builder over `n` vertices with room for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        Self {
            edges: EdgeList::with_capacity(num_vertices, cap),
        }
    }

    /// Adds the undirected edge {u, v}; self-loops are silently dropped at
    /// [`build`](Self::build) time, duplicates collapse.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push(u, v);
        self
    }

    /// Adds every edge from an iterator.
    pub fn extend<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of vertices the builder covers.
    pub fn num_vertices(&self) -> usize {
        self.edges.num_vertices()
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a simple CSR graph.
    pub fn build(mut self) -> CsrGraph {
        self.edges.dedup_simple();
        CsrGraph::from_edge_list(&self.edges)
    }

    /// Finalizes into a deduplicated edge list instead of a CSR graph.
    pub fn build_edge_list(mut self) -> EdgeList {
        self.edges.dedup_simple();
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(1, 1)
            .add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
        assert!(g.is_symmetric());
    }

    #[test]
    fn extend_from_iterator() {
        let mut b = GraphBuilder::with_capacity(4, 3);
        b.extend(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.num_pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn build_edge_list_is_canonical() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0).add_edge(0, 2).add_edge(1, 0);
        let el = b.build_edge_list();
        assert_eq!(el.as_slice(), &[(0, 1), (0, 2)]);
    }
}
