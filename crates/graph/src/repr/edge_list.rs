//! Flat undirected edge list.

use super::VertexId;

/// A list of undirected edges over a fixed vertex set `0..n`.
///
/// This is the interchange format between generators, I/O, and the CSR
/// builder. It performs no deduplication itself; see
/// [`GraphBuilder`](super::GraphBuilder).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// An empty edge list over `n` vertices.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= VertexId::MAX as usize,
            "vertex count exceeds VertexId range"
        );
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// An empty edge list over `n` vertices with capacity for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        let mut el = Self::new(num_vertices);
        el.edges.reserve(cap);
        el
    }

    /// Builds from parts, validating endpoints.
    pub fn from_edges(num_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Self {
        let el = Self {
            num_vertices,
            edges,
        };
        assert!(
            el.edges
                .iter()
                .all(|&(u, v)| (u as usize) < num_vertices && (v as usize) < num_vertices),
            "edge endpoint out of range"
        );
        el
    }

    /// Appends the undirected edge {u, v}.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge endpoint out of range: ({u}, {v}) with n = {}",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Number of vertices n.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of stored edges (duplicates included).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over the stored edges.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, (VertexId, VertexId)> {
        self.edges.iter()
    }

    /// The underlying edge vector.
    #[inline]
    pub fn as_slice(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Removes self-loops and duplicate undirected edges in place
    /// (canonicalizing each edge as (min, max) then sort + dedup).
    /// Returns the number of edges removed.
    pub fn dedup_simple(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.retain(|&(u, v)| u != v);
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        before - self.edges.len()
    }

    /// Consumes the list, returning the raw edges.
    pub fn into_edges(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a (VertexId, VertexId);
    type IntoIter = std::slice::Iter<'a, (VertexId, VertexId)>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut el = EdgeList::new(4);
        assert!(el.is_empty());
        el.push(0, 1);
        el.push(2, 3);
        assert_eq!(el.len(), 2);
        assert_eq!(el.num_vertices(), 4);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 0); // duplicate in reverse orientation
        el.push(2, 2); // self-loop
        el.push(1, 2);
        let removed = el.dedup_simple();
        assert_eq!(removed, 2);
        assert_eq!(el.as_slice(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn from_edges_validates() {
        let el = EdgeList::from_edges(3, vec![(0, 2), (1, 2)]);
        assert_eq!(el.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        EdgeList::from_edges(2, vec![(0, 2)]);
    }

    #[test]
    fn iteration() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        let collected: Vec<_> = (&el).into_iter().copied().collect();
        assert_eq!(collected, vec![(0, 1)]);
    }
}
