//! Backing storage for the CSR arrays: owned heap allocations or
//! shared, read-only `mmap` regions.
//!
//! The graph catalog of the job service loads graphs from the binary
//! on-disk format ([`crate::io`]) and wants *instant* startup: no parse,
//! no copy, no double-resident pages when several processes serve the
//! same graph. [`MapRegion`] wraps one `mmap(2)` of a whole file;
//! [`SharedSlice`] is the array type [`CsrGraph`](super::CsrGraph)
//! actually stores — either a plain owned boxed slice (every
//! constructive path: generators, edge lists, preprocessing) or a typed
//! window into a shared mapping (the zero-copy load path). Dereference
//! cost is identical: both variants resolve to a `&[T]`.
//!
//! Mapped storage is reference-counted, so cloning a mapped graph is
//! O(1) — all clones alias the same physical pages, which is exactly
//! the sharing story the catalog needs for "one immutable CSR across
//! all tenants".

use std::ops::Deref;
use std::sync::Arc;

#[cfg(target_os = "linux")]
use std::ffi::c_void;
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;

/// One read-only memory mapping of an entire file.
///
/// Only constructed on Linux (the only target the workspace maps on);
/// elsewhere the binary loader falls back to buffered reads. The region
/// is `PROT_READ`/`MAP_PRIVATE`: the kernel shares clean page-cache
/// pages between every mapping of the same file.
#[derive(Debug)]
pub struct MapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable for its whole lifetime (PROT_READ,
// never handed out mutably), so concurrent access from any thread is a
// plain shared read.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

#[cfg(target_os = "linux")]
const PROT_READ: i32 = 1;
#[cfg(target_os = "linux")]
const MAP_PRIVATE: i32 = 2;

// `std` already links libc on Linux; declaring the two symbols we need
// keeps the dependency tree flat (same pattern as `st_smp::mem`).
#[cfg(target_os = "linux")]
extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> i32;
}

impl MapRegion {
    /// Maps `file` read-only in its entirety.
    ///
    /// Fails on empty files (`mmap` rejects zero-length maps) and
    /// whenever the kernel refuses the mapping; callers are expected to
    /// fall back to a buffered read.
    #[cfg(target_os = "linux")]
    pub fn map_file(file: &std::fs::File) -> std::io::Result<Self> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we
        // hold open; the result is checked against MAP_FAILED before
        // use, and the region owns the pointer until Drop unmaps it.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` readable
        // bytes for as long as `self` exists.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        // SAFETY: `ptr`/`len` came from a successful mmap that nothing
        // else unmaps; after Drop no SharedSlice can alias the region
        // (each holds its own Arc keeping the region alive).
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
    }
}

/// An immutable array that is either owned or a window into a shared
/// [`MapRegion`].
pub struct SharedSlice<T: Copy> {
    backing: Backing<T>,
}

enum Backing<T: Copy> {
    Owned(Box<[T]>),
    Mapped {
        /// Keeps the mapping alive; dropped last.
        region: Arc<MapRegion>,
        /// Typed view into `region` (alignment checked at creation).
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: owned data is Send/Sync whenever T is; mapped data is
// immutable shared memory guarded by the Arc'd region.
unsafe impl<T: Copy + Send> Send for SharedSlice<T> {}
unsafe impl<T: Copy + Sync> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Wraps an owned boxed slice.
    pub fn owned(data: Box<[T]>) -> Self {
        Self {
            backing: Backing::Owned(data),
        }
    }

    /// Creates a typed window of `len` elements starting `byte_offset`
    /// bytes into `region`.
    ///
    /// Returns `None` when the window is out of bounds or misaligned
    /// for `T` — the loader treats that as a corrupt file, not a panic.
    pub fn from_region(region: Arc<MapRegion>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(bytes)?;
        if end > region.len() {
            return None;
        }
        let ptr = region.bytes()[byte_offset..].as_ptr();
        if ptr.align_offset(std::mem::align_of::<T>()) != 0 {
            return None;
        }
        Some(Self {
            backing: Backing::Mapped {
                region,
                ptr: ptr as *const T,
                len,
            },
        })
    }

    /// True when this slice aliases a mapped region (used by tests and
    /// the catalog's load diagnostics).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped { .. })
    }

    /// The elements as a plain slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.backing {
            Backing::Owned(b) => b,
            Backing::Mapped { ptr, len, .. } => {
                // SAFETY: `from_region` verified bounds and alignment,
                // and the Arc'd region outlives this borrow.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }
}

impl<T: Copy> Deref for SharedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> From<Vec<T>> for SharedSlice<T> {
    fn from(v: Vec<T>) -> Self {
        Self::owned(v.into_boxed_slice())
    }
}

impl<T: Copy> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            Backing::Owned(b) => Self::owned(b.clone()),
            Backing::Mapped { region, ptr, len } => Self {
                backing: Backing::Mapped {
                    region: Arc::clone(region),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for SharedSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for SharedSlice<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_equality() {
        let a: SharedSlice<u32> = vec![1, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_mapped());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mapped_window_aliases_the_file() {
        let path = std::env::temp_dir().join(format!("st_map_test_{}", std::process::id()));
        let payload: Vec<u8> = (0..64u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let region = Arc::new(MapRegion::map_file(&file).unwrap());
        std::fs::remove_file(&path).ok();

        assert_eq!(region.bytes(), &payload[..]);
        let words: SharedSlice<u32> = SharedSlice::from_region(Arc::clone(&region), 0, 4).unwrap();
        assert!(words.is_mapped());
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], u32::from_le_bytes([0, 1, 2, 3]));
        // A clone shares the same region (no copy).
        let again = words.clone();
        assert_eq!(words, again);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn out_of_bounds_and_misaligned_windows_are_rejected() {
        let path = std::env::temp_dir().join(format!("st_map_test2_{}", std::process::id()));
        std::fs::write(&path, [0u8; 16]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let region = Arc::new(MapRegion::map_file(&file).unwrap());
        std::fs::remove_file(&path).ok();

        assert!(SharedSlice::<u64>::from_region(Arc::clone(&region), 0, 3).is_none());
        assert!(SharedSlice::<u64>::from_region(Arc::clone(&region), 1, 1).is_none());
        assert!(SharedSlice::<u64>::from_region(Arc::clone(&region), 8, 1).is_some());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn empty_files_do_not_map() {
        let path = std::env::temp_dir().join(format!("st_map_test3_{}", std::process::id()));
        std::fs::write(&path, []).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(MapRegion::map_file(&file).is_err());
        std::fs::remove_file(&path).ok();
    }
}
