//! Graph representations.
//!
//! The spanning-tree algorithms all operate on an immutable, shared
//! [`CsrGraph`] (compressed sparse row), mirroring the adjacency-list
//! representation the paper assumes. Construction goes through either a
//! raw [`EdgeList`] or the deduplicating [`GraphBuilder`].

mod builder;
mod csr;
mod edge_list;
mod storage;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, DegreeStats};
pub use edge_list::EdgeList;
pub use storage::{MapRegion, SharedSlice};

/// Vertex identifier.
///
/// The study never exceeds a few million vertices (the paper's largest
/// inputs have n = 1M), so a 32-bit id halves the memory traffic of the
/// adjacency arrays relative to `usize` — exactly the kind of
/// cache-friendliness the SMP model rewards.
pub type VertexId = u32;

/// Sentinel "no vertex" value used in parent arrays for roots and
/// unreached vertices.
pub const NO_VERTEX: VertexId = VertexId::MAX;
