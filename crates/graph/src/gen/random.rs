//! Uniform random graphs G(n, m).

use std::collections::HashSet;

use rand::Rng;

use super::rng_from_seed;
use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// Random graph with `n` vertices and exactly `m` unique edges added
/// uniformly at random (rejection-sampling duplicates and self-loops).
///
/// This matches the paper's description: "We create a random graph of n
/// vertices and m edges by randomly adding m unique edges to the vertex
/// set", the construction used by LEDA. Fig. 3 uses m = 1.5 n; Fig. 4's
/// random panel uses n = 1M, m = 20M ≈ n log n.
///
/// # Panics
///
/// Panics when `m` exceeds the number of distinct vertex pairs
/// n·(n−1)/2, which would make rejection sampling diverge.
pub fn random_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1, "random graph needs at least one vertex");
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_edges,
        "requested m = {m} exceeds max simple edges {max_edges} for n = {n}"
    );
    let mut rng = rng_from_seed(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Random *connected* graph: a uniformly random spanning tree (random
/// attachment) plus `extra` additional unique random edges.
///
/// Used by tests and examples that need a guaranteed single component with
/// random topology; the paper's random family does not guarantee
/// connectivity, so this is auxiliary.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1, "random graph needs at least one vertex");
    let max_extra = n * n.saturating_sub(1) / 2 - n.saturating_sub(1);
    assert!(
        extra <= max_extra,
        "requested extra = {extra} exceeds available non-tree edges {max_extra}"
    );
    let mut rng = rng_from_seed(seed);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(n + extra);
    let mut b = GraphBuilder::with_capacity(n, n + extra);
    // Random attachment tree: vertex v >= 1 links to a uniform earlier
    // vertex. Guarantees connectivity with n - 1 edges.
    for v in 1..n as VertexId {
        let u = rng.gen_range(0..v);
        let key = (u, v);
        seen.insert(key);
        b.add_edge(u, v);
    }
    let mut added = 0usize;
    while added < extra {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = random_gnm(100, 150, 5);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 150);
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
    }

    #[test]
    fn gnm_is_deterministic() {
        assert_eq!(random_gnm(50, 75, 9), random_gnm(50, 75, 9));
        assert_ne!(random_gnm(50, 75, 9), random_gnm(50, 75, 10));
    }

    #[test]
    fn gnm_can_fill_the_complete_graph() {
        let g = random_gnm(6, 15, 1);
        assert_eq!(g.num_edges(), 15);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max simple edges")]
    fn gnm_rejects_impossible_m() {
        random_gnm(4, 7, 0);
    }

    #[test]
    fn gnm_single_vertex() {
        let g = random_gnm(1, 0, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(200, 100, seed);
            assert_eq!(count_components(&g), 1);
            assert_eq!(g.num_edges(), 199 + 100);
        }
    }

    #[test]
    fn random_connected_tree_only() {
        let g = random_connected(64, 0, 3);
        assert_eq!(g.num_edges(), 63);
        assert_eq!(count_components(&g), 1);
    }
}
