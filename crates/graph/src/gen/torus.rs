//! Torus generators (regular meshes with wraparound).

use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// 2D torus: `rows × cols` vertices in row-major order, each connected to
/// its four neighbors with wraparound.
///
/// This is the paper's "2D Torus" family. With the default row-major
/// labeling, consecutive vertex ids are mesh-adjacent, which is the
/// labeling that favors Shiloach–Vishkin; apply
/// [`label::random_permutation`](crate::label::random_permutation) for the
/// adversarial labeling of Fig. 4's second torus panel.
///
/// Dimensions of 1 or 2 collapse duplicate wraparound edges, so e.g. a
/// 2 × 2 torus is the 4-cycle.
pub fn torus2d(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1, "torus dimensions must be >= 1");
    let n = rows
        .checked_mul(cols)
        .expect("torus vertex count overflows");
    let idx = |r: usize, c: usize| -> VertexId { (r * cols + c) as VertexId };
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            // Right and down neighbors cover each undirected edge once.
            b.add_edge(v, idx(r, (c + 1) % cols));
            b.add_edge(v, idx((r + 1) % rows, c));
        }
    }
    b.build()
}

/// 3D torus: `x × y × z` vertices, six-connected with wraparound.
///
/// Not in the paper's corpus but used by tests and ablations as a regular
/// 3D topology counterpart to `3D40`.
pub fn torus3d(x: usize, y: usize, z: usize) -> CsrGraph {
    assert!(x >= 1 && y >= 1 && z >= 1, "torus dimensions must be >= 1");
    let n = x
        .checked_mul(y)
        .and_then(|xy| xy.checked_mul(z))
        .expect("torus vertex count overflows");
    let idx = |i: usize, j: usize, k: usize| -> VertexId { ((i * y + j) * z + k) as VertexId };
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                let v = idx(i, j, k);
                b.add_edge(v, idx((i + 1) % x, j, k));
                b.add_edge(v, idx(i, (j + 1) % y, k));
                b.add_edge(v, idx(i, j, (k + 1) % z));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    #[test]
    fn torus2d_is_4_regular() {
        let g = torus2d(8, 8);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 128);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
    }

    #[test]
    fn torus2d_is_connected() {
        let g = torus2d(5, 7);
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn degenerate_torus_dimensions() {
        // 1 x 1: single vertex, wraparound edges are self-loops -> dropped.
        let g = torus2d(1, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);

        // 1 x 4: ring of 4.
        let g = torus2d(1, 4);
        assert_eq!(g.num_edges(), 4);

        // 2 x 2: wraparound duplicates collapse to the 4-cycle.
        let g = torus2d(2, 2);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_no_parallel_edges());
    }

    #[test]
    fn torus3d_is_6_regular() {
        let g = torus3d(4, 3, 5);
        assert_eq!(g.num_vertices(), 60);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn torus2d_rowmajor_adjacency() {
        let g = torus2d(3, 4);
        // Vertex 0 = (0,0): right (0,1)=1, left (0,3)=3, down (1,0)=4,
        // up (2,0)=8.
        let mut n0: Vec<_> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3, 4, 8]);
    }
}
