//! Geometric k-nearest-neighbor graphs (the paper's "Geometric Graphs and
//! AD3" family, after Moret & Shapiro's MST study).

use rand::Rng;

use super::rng_from_seed;
use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// Geometric k-NN graph: `n` points uniform in the unit square, each
/// vertex connected to its `k` nearest neighbors (Euclidean).
///
/// The union of the directed k-NN relations is taken as an undirected
/// simple graph, so degrees range from k up to ~6k in practice.
///
/// Uses a uniform grid with expanding ring search, giving expected
/// O(n·k) construction rather than the naive O(n²).
pub fn geometric_knn(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1, "geometric graph needs at least one vertex");
    let k = k.min(n.saturating_sub(1));
    if k == 0 {
        return CsrGraph::empty(n);
    }
    let mut rng = rng_from_seed(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let grid = PointGrid::build(&points, (k + 1) as f64);

    let mut b = GraphBuilder::with_capacity(n, n * k);
    let mut best: Vec<(f64, VertexId)> = Vec::with_capacity(4 * (k + 1));
    for (i, &p) in points.iter().enumerate() {
        best.clear();
        grid.k_nearest(&points, p, i as VertexId, k, &mut best);
        for &(_, j) in best.iter() {
            b.add_edge(i as VertexId, j);
        }
    }
    b.build()
}

/// AD3: the geometric graph with k = 3, the "tertiary" input used by
/// Greiner, Hsu et al., Krishnamurthy et al., and Goddard et al.
pub fn ad3(n: usize, seed: u64) -> CsrGraph {
    geometric_knn(n, 3, seed)
}

/// Uniform bucket grid over the unit square for neighbor queries.
struct PointGrid {
    cells_per_side: usize,
    cell_size: f64,
    /// CSR-style bucketing: `starts[c]..starts[c+1]` indexes `members`.
    starts: Vec<usize>,
    members: Vec<VertexId>,
}

impl PointGrid {
    /// Builds a grid sized so the expected bucket occupancy is roughly
    /// `target_per_cell`.
    fn build(points: &[(f64, f64)], target_per_cell: f64) -> Self {
        let n = points.len();
        let cells_per_side = ((n as f64 / target_per_cell).sqrt().ceil() as usize).max(1);
        let cell_size = 1.0 / cells_per_side as f64;
        let num_cells = cells_per_side * cells_per_side;
        let cell_of = |p: (f64, f64)| -> usize {
            let cx = ((p.0 / cell_size) as usize).min(cells_per_side - 1);
            let cy = ((p.1 / cell_size) as usize).min(cells_per_side - 1);
            cy * cells_per_side + cx
        };
        let mut counts = vec![0usize; num_cells + 1];
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..num_cells {
            counts[c + 1] += counts[c];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut members = vec![0 as VertexId; n];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            members[cursor[c]] = i as VertexId;
            cursor[c] += 1;
        }
        Self {
            cells_per_side,
            cell_size,
            starts,
            members,
        }
    }

    fn bucket(&self, cx: usize, cy: usize) -> &[VertexId] {
        let c = cy * self.cells_per_side + cx;
        &self.members[self.starts[c]..self.starts[c + 1]]
    }

    /// Collects the k nearest neighbors of `query` (excluding vertex
    /// `exclude`) into `out` as (distance², id) pairs.
    ///
    /// Correctness of the ring cutoff: any point in a cell at Chebyshev
    /// cell-distance d from the query's cell is at Euclidean distance
    /// ≥ (d − 1)·cell_size, so once the kth-best distance is ≤
    /// r·cell_size after scanning rings 0..=r, no unscanned point can
    /// improve the result.
    fn k_nearest(
        &self,
        points: &[(f64, f64)],
        query: (f64, f64),
        exclude: VertexId,
        k: usize,
        out: &mut Vec<(f64, VertexId)>,
    ) {
        let side = self.cells_per_side;
        let qcx = ((query.0 / self.cell_size) as usize).min(side - 1);
        let qcy = ((query.1 / self.cell_size) as usize).min(side - 1);
        let consider = |cx: usize, cy: usize, out: &mut Vec<(f64, VertexId)>| {
            for &j in self.bucket(cx, cy) {
                if j == exclude {
                    continue;
                }
                let (px, py) = points[j as usize];
                let d2 = (px - query.0).powi(2) + (py - query.1).powi(2);
                if out.len() < k {
                    out.push((d2, j));
                    if out.len() == k {
                        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                    }
                } else if d2 < out[k - 1].0 {
                    // Insertion into the small sorted top-k list.
                    let pos = out.partition_point(|e| e.0 <= d2);
                    out.pop();
                    out.insert(pos, (d2, j));
                }
            }
        };
        let max_ring = side; // enough to cover the whole square
        for r in 0..=max_ring {
            // Scan the ring of cells at Chebyshev distance exactly r.
            let x_lo = qcx.saturating_sub(r);
            let x_hi = (qcx + r).min(side - 1);
            let y_lo = qcy.saturating_sub(r);
            let y_hi = (qcy + r).min(side - 1);
            for cy in y_lo..=y_hi {
                for cx in x_lo..=x_hi {
                    let cheb = cx.abs_diff(qcx).max(cy.abs_diff(qcy));
                    if cheb == r {
                        consider(cx, cy, out);
                    }
                }
            }
            if out.len() >= k {
                let worst = out[k - 1].0.sqrt();
                if worst <= r as f64 * self.cell_size {
                    break;
                }
            }
        }
        out.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    /// Brute-force k-NN oracle.
    fn knn_brute(points: &[(f64, f64)], i: usize, k: usize) -> Vec<VertexId> {
        let mut d: Vec<(f64, VertexId)> = points
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, &(x, y))| {
                (
                    (x - points[i].0).powi(2) + (y - points[i].1).powi(2),
                    j as VertexId,
                )
            })
            .collect();
        d.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        d.truncate(k);
        d.into_iter().map(|(_, j)| j).collect()
    }

    #[test]
    fn grid_knn_matches_brute_force() {
        let mut rng = rng_from_seed(77);
        let points: Vec<(f64, f64)> = (0..200)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let grid = PointGrid::build(&points, 4.0);
        let mut out = Vec::new();
        for i in 0..points.len() {
            out.clear();
            grid.k_nearest(&points, points[i], i as VertexId, 5, &mut out);
            let mut got: Vec<VertexId> = out.iter().map(|&(_, j)| j).collect();
            let mut want = knn_brute(&points, i, 5);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "mismatch at query {i}");
        }
    }

    #[test]
    fn knn_graph_min_degree_is_k() {
        let g = geometric_knn(300, 3, 2);
        assert_eq!(g.num_vertices(), 300);
        for v in g.vertices() {
            assert!(g.degree(v) >= 3, "vertex {v} has degree {}", g.degree(v));
        }
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
    }

    #[test]
    fn ad3_is_k3() {
        let a = ad3(100, 5);
        let b = geometric_knn(100, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn knn_small_n_clamps_k() {
        let g = geometric_knn(3, 10, 0);
        // k clamps to n - 1 = 2; the 3 points form a triangle.
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn knn_zero_k() {
        let g = geometric_knn(5, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn knn_is_deterministic() {
        assert_eq!(geometric_knn(128, 4, 9), geometric_knn(128, 4, 9));
    }

    #[test]
    fn knn_mostly_connected_for_moderate_k() {
        // k-NN graphs with k >= 3 on a few hundred uniform points have at
        // most a handful of components; sanity-check it's not shattered.
        let g = geometric_knn(400, 4, 13);
        assert!(count_components(&g) <= 8);
    }
}
