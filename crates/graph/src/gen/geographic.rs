//! Geographic (Internet-topology) graphs after Calvert, Doar & Zegura,
//! the paper's "Geographic Graphs" family in flat and hierarchical modes.

use rand::rngs::StdRng;
use rand::Rng;

use super::rng_from_seed;
use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// Parameters of the flat geographic (Waxman-style) model.
///
/// Vertices are placed uniformly at random in the unit square; each pair
/// at Euclidean distance d ≤ `radius` is connected with probability
/// `alpha · exp(−d / (beta · radius))`. Pairs beyond `radius` are never
/// connected, which (a) matches the locality of wide-area links the model
/// captures and (b) lets generation use a bucket grid instead of the
/// all-pairs scan, making n = 1M inputs feasible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoFlatParams {
    /// Maximum link probability (at distance 0).
    pub alpha: f64,
    /// Decay of link probability with distance, relative to `radius`.
    pub beta: f64,
    /// Hard connection cutoff distance.
    pub radius: f64,
}

impl GeoFlatParams {
    /// Chooses `radius` so the expected mean degree is approximately
    /// `target_degree` for `n` vertices (ignoring boundary effects).
    ///
    /// Expected degree ≈ n · α · 2π(βR)² · (1 − e^{−1/β}(1 + 1/β)),
    /// from integrating the Waxman kernel over the disc of radius R.
    pub fn with_target_degree(n: usize, target_degree: f64) -> Self {
        let alpha = 0.9;
        let beta = 0.5;
        let kernel = 2.0
            * std::f64::consts::PI
            * beta
            * beta
            * (1.0 - (-1.0 / beta).exp() * (1.0 + 1.0 / beta));
        let radius = (target_degree / (n as f64 * alpha * kernel)).sqrt();
        Self {
            alpha,
            beta,
            radius: radius.min(std::f64::consts::SQRT_2),
        }
    }
}

impl Default for GeoFlatParams {
    /// Defaults tuned for a mean degree near 4 at n = 10⁴; prefer
    /// [`GeoFlatParams::with_target_degree`] for other sizes.
    fn default() -> Self {
        Self::with_target_degree(10_000, 4.0)
    }
}

/// Flat-mode geographic graph: distance-dependent random links between
/// uniformly placed vertices.
pub fn geographic_flat(n: usize, params: GeoFlatParams, seed: u64) -> CsrGraph {
    assert!(n >= 1, "geographic graph needs at least one vertex");
    assert!(params.radius > 0.0, "radius must be positive");
    assert!(
        (0.0..=1.0).contains(&params.alpha),
        "alpha must be a probability"
    );
    let mut rng = rng_from_seed(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    // Bucket grid with cell size >= radius, so candidate pairs live in the
    // 3 x 3 cell neighborhood.
    let cells_per_side = ((1.0 / params.radius).floor() as usize).clamp(1, 4096);
    let cell_size = 1.0 / cells_per_side as f64;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        (
            ((p.0 / cell_size) as usize).min(cells_per_side - 1),
            ((p.1 / cell_size) as usize).min(cells_per_side - 1),
        )
    };
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(i as VertexId);
    }

    let r2 = params.radius * params.radius;
    let mut b = GraphBuilder::new(n);
    let try_pair = |u: VertexId, v: VertexId, rng: &mut StdRng, b: &mut GraphBuilder| {
        let (ux, uy) = points[u as usize];
        let (vx, vy) = points[v as usize];
        let d2 = (ux - vx).powi(2) + (uy - vy).powi(2);
        if d2 > r2 {
            return;
        }
        let d = d2.sqrt();
        let p = params.alpha * (-d / (params.beta * params.radius)).exp();
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            b.add_edge(u, v);
        }
    };
    for cy in 0..cells_per_side {
        for cx in 0..cells_per_side {
            let home = &buckets[cy * cells_per_side + cx];
            // Pairs within the home cell.
            for (i, &u) in home.iter().enumerate() {
                for &v in &home[i + 1..] {
                    try_pair(u, v, &mut rng, &mut b);
                }
            }
            // Pairs against "forward" neighbor cells only, so each cell
            // pair is visited once: E, SW, S, SE.
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0
                    || ny < 0
                    || nx as usize >= cells_per_side
                    || ny as usize >= cells_per_side
                {
                    continue;
                }
                let other = &buckets[ny as usize * cells_per_side + nx as usize];
                for &u in home {
                    for &v in other {
                        try_pair(u, v, &mut rng, &mut b);
                    }
                }
            }
        }
    }
    b.build()
}

/// Parameters of the hierarchical geographic model: a backbone whose
/// vertices anchor domains, whose vertices anchor subdomains — the
/// paper's sketch of the Internet's transit/stub structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoHierParams {
    /// Number of backbone vertices.
    pub backbones: usize,
    /// Domain vertices attached to each backbone vertex.
    pub domains_per_backbone: usize,
    /// Subdomain vertices attached to each domain vertex.
    pub verts_per_domain: usize,
    /// Extra long-haul edges added among backbone vertices beyond the
    /// connecting tree.
    pub backbone_extra_edges: usize,
    /// Probability of a local cross-link between sibling vertices in the
    /// same domain / subdomain cluster.
    pub local_link_prob: f64,
}

impl GeoHierParams {
    /// Total vertex count B·(1 + D·(1 + S)).
    pub fn total_vertices(&self) -> usize {
        self.backbones * (1 + self.domains_per_backbone * (1 + self.verts_per_domain))
    }

    /// Parameters whose [`total_vertices`](Self::total_vertices) is close
    /// to (and at least) `n`, with a 1 : 16 : 256 backbone : domain :
    /// subdomain split.
    pub fn with_approx_n(n: usize) -> Self {
        let backbones = ((n as f64 / 273.0).cbrt().ceil() as usize).max(2);
        let mut p = Self {
            backbones,
            domains_per_backbone: 16,
            verts_per_domain: 16,
            backbone_extra_edges: backbones / 2,
            local_link_prob: 0.05,
        };
        while p.total_vertices() < n {
            p.backbones += 1;
            p.backbone_extra_edges = p.backbones / 2;
        }
        p
    }
}

impl Default for GeoHierParams {
    fn default() -> Self {
        Self {
            backbones: 8,
            domains_per_backbone: 4,
            verts_per_domain: 8,
            backbone_extra_edges: 4,
            local_link_prob: 0.05,
        }
    }
}

/// Hierarchical-mode geographic graph.
///
/// Backbone vertices are connected by a random attachment tree plus
/// `backbone_extra_edges` random long-haul links; every domain vertex
/// links to its backbone anchor, every subdomain vertex to its domain
/// anchor, and sibling vertices cross-link with `local_link_prob`. The
/// result is connected by construction, mirroring how the transit
/// hierarchy keeps the Internet connected.
pub fn geographic_hier(params: GeoHierParams, seed: u64) -> CsrGraph {
    assert!(params.backbones >= 1, "need at least one backbone vertex");
    assert!(
        (0.0..=1.0).contains(&params.local_link_prob),
        "local_link_prob must be a probability"
    );
    let n = params.total_vertices();
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::new(n);

    // Vertex ids: backbone 0..B, then domains, then subdomains, assigned
    // as we go.
    let bb = params.backbones as VertexId;
    // Backbone tree + extra edges.
    for v in 1..bb {
        let u = rng.gen_range(0..v);
        b.add_edge(u, v);
    }
    for _ in 0..params.backbone_extra_edges {
        if bb >= 2 {
            let u = rng.gen_range(0..bb);
            let v = rng.gen_range(0..bb);
            if u != v {
                b.add_edge(u, v);
            }
        }
    }

    let mut next: VertexId = bb;
    for backbone in 0..bb {
        let mut domain_anchors = Vec::with_capacity(params.domains_per_backbone);
        for _ in 0..params.domains_per_backbone {
            let dom = next;
            next += 1;
            b.add_edge(backbone, dom);
            domain_anchors.push(dom);
        }
        // Sibling cross-links among the backbone's domains.
        for (i, &d1) in domain_anchors.iter().enumerate() {
            for &d2 in &domain_anchors[i + 1..] {
                if rng.gen_bool(params.local_link_prob) {
                    b.add_edge(d1, d2);
                }
            }
        }
        for &dom in &domain_anchors {
            let mut subs = Vec::with_capacity(params.verts_per_domain);
            for _ in 0..params.verts_per_domain {
                let s = next;
                next += 1;
                b.add_edge(dom, s);
                subs.push(s);
            }
            for (i, &s1) in subs.iter().enumerate() {
                for &s2 in &subs[i + 1..] {
                    if rng.gen_bool(params.local_link_prob) {
                        b.add_edge(s1, s2);
                    }
                }
            }
        }
    }
    debug_assert_eq!(next as usize, n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    #[test]
    fn flat_target_degree_is_roughly_met() {
        let n = 4000;
        let g = geographic_flat(n, GeoFlatParams::with_target_degree(n, 4.0), 3);
        let mean = 2.0 * g.num_edges() as f64 / n as f64;
        // Boundary effects depress the mean a little; accept a wide band.
        assert!((2.5..5.5).contains(&mean), "mean degree {mean}");
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
    }

    #[test]
    fn flat_is_deterministic() {
        let p = GeoFlatParams::with_target_degree(500, 4.0);
        assert_eq!(geographic_flat(500, p, 1), geographic_flat(500, p, 1));
        assert_ne!(geographic_flat(500, p, 1), geographic_flat(500, p, 2));
    }

    #[test]
    fn flat_single_vertex() {
        let g = geographic_flat(1, GeoFlatParams::default(), 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn flat_respects_radius_cutoff() {
        // A tiny radius on few points yields no (or almost no) edges.
        let p = GeoFlatParams {
            alpha: 1.0,
            beta: 0.5,
            radius: 1e-6,
        };
        let g = geographic_flat(50, p, 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn hier_is_connected_by_construction() {
        let params = GeoHierParams::default();
        let g = geographic_hier(params, 9);
        assert_eq!(g.num_vertices(), params.total_vertices());
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn hier_with_approx_n_reaches_n() {
        for n in [100usize, 1000, 50_000] {
            let p = GeoHierParams::with_approx_n(n);
            assert!(p.total_vertices() >= n);
            // Not wildly larger either (within 2x for these sizes).
            assert!(p.total_vertices() <= 2 * n + 600);
        }
    }

    #[test]
    fn hier_is_deterministic() {
        let p = GeoHierParams::default();
        assert_eq!(geographic_hier(p, 5), geographic_hier(p, 5));
    }

    #[test]
    fn hier_minimal_params() {
        let p = GeoHierParams {
            backbones: 1,
            domains_per_backbone: 0,
            verts_per_domain: 0,
            backbone_extra_edges: 0,
            local_link_prob: 0.0,
        };
        let g = geographic_hier(p, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
