//! Graph generators for every input family in the paper's experimental
//! study (§4 "Experimental Data"), plus auxiliary families used by the
//! test suite.
//!
//! Paper families:
//!
//! * **2D Torus** — [`torus2d`]: each vertex connected to its four mesh
//!   neighbors with wraparound.
//! * **2D60** — [`mesh2d_p`] with probability 0.6: 2D mesh with each edge
//!   present with probability 60%.
//! * **3D40** — [`mesh3d_p`] with probability 0.4.
//! * **Random graph** — [`random_gnm`]: m unique edges added uniformly at
//!   random (the LEDA-style construction the paper cites).
//! * **Geometric / AD3** — [`geometric_knn`]: n points uniform in the unit
//!   square, each connected to its k nearest neighbors; [`ad3`] is k = 3.
//! * **Geographic (flat)** — [`geographic_flat`]: Waxman-style
//!   distance-dependent edges between randomly placed vertices
//!   (Calvert–Doar–Zegura Internet models).
//! * **Geographic (hierarchical)** — [`geographic_hier`]: backbone /
//!   domain / subdomain Internet structure.
//! * **Degenerate chain** — [`chain`]: the pathological
//!   diameter-(n−1) path graph.
//!
//! Every generator is a pure function of its parameters and the `seed`,
//! so experiments replay bit-identically.

mod chain;
mod geographic;
mod geometric;
mod mesh;
mod misc;
mod random;
mod scale_free;
mod torus;

pub use chain::{chain, cycle};
pub use geographic::{geographic_flat, geographic_hier, GeoFlatParams, GeoHierParams};
pub use geometric::{ad3, geometric_knn};
pub use mesh::{mesh2d_p, mesh3d_p};
pub use misc::{binary_tree, complete, grid2d, star};
pub use random::{random_connected, random_gnm};
pub use scale_free::{rmat, watts_strogatz, RmatParams};
pub use torus::{torus2d, torus3d};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG every generator uses, constructed from a user
/// seed. StdRng (ChaCha12) is stable across platforms and releases within
/// rand 0.8, which keeps the experiment corpus reproducible.
pub(crate) fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_differs_by_seed() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
