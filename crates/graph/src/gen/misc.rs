//! Auxiliary graph families used by tests, examples, and ablations.

use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// Star graph: vertex 0 adjacent to every other vertex.
///
/// Exercises the extreme-hub case: the sequential BFS frontier after the
/// root is the entire graph, and all parallelism in the traversal comes
/// from stealing pieces of one huge queue.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph K_n.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete binary tree with `n` vertices, heap-indexed (vertex v has
/// children 2v+1 and 2v+2).
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        b.add_edge((v - 1) / 2, v);
    }
    b.build()
}

/// 2D grid without wraparound (`rows × cols`), row-major labels.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
    let n = rows.checked_mul(cols).expect("grid vertex count overflows");
    let idx = |r: usize, c: usize| -> VertexId { (r * cols + c) as VertexId };
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    #[test]
    fn star_shape() {
        let g = star(8);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.degree(0), 7);
        for v in 1..8 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn complete_tiny() {
        assert_eq!(complete(0).num_vertices(), 0);
        assert_eq!(complete(1).num_edges(), 0);
        assert_eq!(complete(2).num_edges(), 1);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1); // leaf
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(count_components(&g), 1);
        // Corner has degree 2, interior degree up to 4.
        assert_eq!(g.degree(0), 2);
    }
}
