//! Skewed-degree and small-world generators (extensions beyond the
//! paper's corpus).
//!
//! The paper's future work plans validation "on larger SMPs … on other
//! vendors' platforms"; follow-on studies of exactly this algorithm
//! family (Bader & Cong's later journal version and the SSCA#2
//! benchmark work) added scale-free inputs because their extreme degree
//! skew stresses work stealing much harder than the 2004 corpus. These
//! generators supply that stress locally:
//!
//! * [`rmat`] — the recursive-matrix (R-MAT) generator with the
//!   standard (a, b, c, d) quadrant probabilities; power-law-ish degree
//!   distribution, tiny diameter.
//! * [`watts_strogatz`] — ring lattice with random rewiring; tunable
//!   between the regular torus-like and random-graph-like regimes.

use rand::Rng;

use super::rng_from_seed;
use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "hub" mass).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl RmatParams {
    /// The classic (0.57, 0.19, 0.19, 0.05) parameterization.
    pub fn standard() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// The implied bottom-right probability d = 1 − a − b − c.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// R-MAT graph over `n = 2^scale` vertices with approximately
/// `edge_factor · n` undirected edges (duplicates and self-loops are
/// dropped, so the simple-edge count is somewhat lower — hub collisions
/// are the point of the distribution).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..=30).contains(&scale), "scale out of range");
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && params.d() >= 0.0,
        "quadrant probabilities must be a valid distribution"
    );
    let n = 1usize << scale;
    let target_edges = n.saturating_mul(edge_factor);
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, target_edges);
    for _ in 0..target_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring where each vertex connects
/// to its `k` nearest ring neighbors on each side, with every edge
/// rewired to a random endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    assert!(k >= 1 && 2 * k < n, "k must satisfy 1 <= k < n/2");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint uniformly (self-loops and
                // duplicates collapse in the builder, matching the
                // usual implementation's retry-free variant).
                let w = rng.gen_range(0..n);
                b.add_edge(u as VertexId, w as VertexId);
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_histogram, profile};

    #[test]
    fn rmat_shape_and_determinism() {
        let g = rmat(10, 8, RmatParams::standard(), 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4_000, "m = {}", g.num_edges());
        assert!(g.has_no_self_loops());
        assert!(g.has_no_parallel_edges());
        assert_eq!(g, rmat(10, 8, RmatParams::standard(), 3));
        assert_ne!(g, rmat(10, 8, RmatParams::standard(), 4));
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = rmat(11, 8, RmatParams::standard(), 7);
        let p = profile(&g);
        // Hubs: max degree far above the mean — the defining contrast
        // with the paper's bounded-degree meshes.
        assert!(
            p.max_degree as f64 > 8.0 * p.mean_degree,
            "max {} vs mean {:.1}",
            p.max_degree,
            p.mean_degree
        );
    }

    #[test]
    fn rmat_uniform_params_resemble_random() {
        let uniform = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(10, 6, uniform, 1);
        let p = profile(&g);
        // No extreme hubs under uniform quadrants.
        assert!(p.max_degree < 40, "max degree {}", p.max_degree);
    }

    #[test]
    #[should_panic(expected = "valid distribution")]
    fn rmat_rejects_bad_probs() {
        rmat(
            5,
            4,
            RmatParams {
                a: 0.9,
                b: 0.2,
                c: 0.2,
            },
            0,
        );
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let g = watts_strogatz(50, 2, 0.0, 5);
        assert_eq!(g.num_edges(), 100);
        let h = degree_histogram(&g);
        assert_eq!(h[4], 50, "every vertex has exactly 2k = 4 neighbors");
        let p = profile(&g);
        assert_eq!(p.components, 1);
        // Regular ring: diameter ~ n / (2k).
        assert!(p.diameter_lb >= 10);
    }

    #[test]
    fn watts_strogatz_rewiring_shrinks_diameter() {
        let regular = profile(&watts_strogatz(400, 2, 0.0, 9));
        let small_world = profile(&watts_strogatz(400, 2, 0.3, 9));
        assert!(
            small_world.diameter_lb < regular.diameter_lb / 2,
            "rewiring should shorten paths: {} vs {}",
            small_world.diameter_lb,
            regular.diameter_lb
        );
    }

    #[test]
    fn watts_strogatz_is_deterministic() {
        assert_eq!(watts_strogatz(80, 3, 0.2, 2), watts_strogatz(80, 3, 0.2, 2));
    }

    #[test]
    #[should_panic(expected = "k must satisfy")]
    fn watts_strogatz_rejects_big_k() {
        watts_strogatz(10, 5, 0.1, 0);
    }

    #[test]
    fn algorithms_handle_skewed_graphs() {
        // The real point: the spanning-tree algorithms cope with hubs.
        let g = rmat(11, 8, RmatParams::standard(), 11);
        let f = crate::validate::component_labels(&g);
        assert!(!f.is_empty());
    }
}
