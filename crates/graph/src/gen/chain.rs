//! Degenerate chain graphs — the paper's pathological family.

use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// Degenerate chain (path) graph: vertices 0 − 1 − 2 − … − (n−1).
///
/// Diameter n − 1, every internal vertex of degree 2. This is the paper's
/// worst case for the work-stealing traversal (a busy processor's queue
/// holds a single frontier vertex, so there is nothing to steal) and the
/// input that motivates both the degree-2 preprocessing
/// ([`preprocess`](crate::preprocess)) and the condition-variable
/// starvation detector. Fig. 4's bottom row uses this family with
/// sequential and random labelings.
pub fn chain(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph: the chain plus the closing edge (n−1, 0). Needs n ≥ 3 to
/// be simple; smaller n degrade gracefully (n = 2 is a single edge,
/// n ≤ 1 is edgeless).
pub fn cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    if n >= 3 {
        b.add_edge(n as VertexId - 1, 0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::count_components;

    #[test]
    fn chain_shape() {
        let g = chain(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(9), 1);
        for v in 1..9 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn chain_tiny() {
        assert_eq!(chain(0).num_vertices(), 0);
        assert_eq!(chain(1).num_edges(), 0);
        assert_eq!(chain(2).num_edges(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn cycle_small_cases() {
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(cycle(3).num_edges(), 3);
    }
}
