//! Irregular mesh generators: the paper's 2D60 and 3D40 families.

use rand::Rng;

use super::rng_from_seed;
use crate::repr::{CsrGraph, GraphBuilder, VertexId};

/// 2D mesh (no wraparound) where each potential mesh edge is present
/// independently with probability `p`.
///
/// `mesh2d_p(rows, cols, 0.6, seed)` is the paper's **2D60** family.
/// The result is generally disconnected, which is why all algorithms in
/// this reproduction compute spanning *forests*.
pub fn mesh2d_p(rows: usize, cols: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1, "mesh dimensions must be >= 1");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let n = rows.checked_mul(cols).expect("mesh vertex count overflows");
    let idx = |r: usize, c: usize| -> VertexId { (r * cols + c) as VertexId };
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, (2.0 * n as f64 * p) as usize);
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            if c + 1 < cols && rng.gen_bool(p) {
                b.add_edge(v, idx(r, c + 1));
            }
            if r + 1 < rows && rng.gen_bool(p) {
                b.add_edge(v, idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// 3D mesh (no wraparound) where each potential mesh edge is present
/// independently with probability `p`.
///
/// `mesh3d_p(x, y, z, 0.4, seed)` is the paper's **3D40** family.
pub fn mesh3d_p(x: usize, y: usize, z: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(x >= 1 && y >= 1 && z >= 1, "mesh dimensions must be >= 1");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let n = x
        .checked_mul(y)
        .and_then(|xy| xy.checked_mul(z))
        .expect("mesh vertex count overflows");
    let idx = |i: usize, j: usize, k: usize| -> VertexId { ((i * y + j) * z + k) as VertexId };
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::with_capacity(n, (3.0 * n as f64 * p) as usize);
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                let v = idx(i, j, k);
                if i + 1 < x && rng.gen_bool(p) {
                    b.add_edge(v, idx(i + 1, j, k));
                }
                if j + 1 < y && rng.gen_bool(p) {
                    b.add_edge(v, idx(i, j + 1, k));
                }
                if k + 1 < z && rng.gen_bool(p) {
                    b.add_edge(v, idx(i, j, k + 1));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh2d_full_probability_is_grid() {
        let g = mesh2d_p(4, 5, 1.0, 0);
        assert_eq!(g.num_vertices(), 20);
        // Grid edges: 4*(5-1) horizontal + (4-1)*5 vertical = 16 + 15.
        assert_eq!(g.num_edges(), 31);
    }

    #[test]
    fn mesh2d_zero_probability_is_empty() {
        let g = mesh2d_p(4, 5, 0.0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn mesh2d_60_density_is_plausible() {
        let g = mesh2d_p(64, 64, 0.6, 7);
        let full = 64 * 63 * 2;
        let frac = g.num_edges() as f64 / full as f64;
        assert!(
            (0.55..0.65).contains(&frac),
            "edge fraction {frac} too far from 0.6"
        );
        assert!(g.is_symmetric());
    }

    #[test]
    fn mesh3d_full_probability_edge_count() {
        let g = mesh3d_p(3, 3, 3, 1.0, 0);
        assert_eq!(g.num_vertices(), 27);
        // 3 directions * 2*3*3 missing-boundary count: per direction
        // (3-1)*3*3 = 18 edges.
        assert_eq!(g.num_edges(), 54);
    }

    #[test]
    fn mesh3d_40_density_is_plausible() {
        let g = mesh3d_p(16, 16, 16, 0.4, 11);
        let full = 3 * 15 * 16 * 16;
        let frac = g.num_edges() as f64 / full as f64;
        assert!(
            (0.35..0.45).contains(&frac),
            "edge fraction {frac} too far from 0.4"
        );
    }

    #[test]
    fn mesh_is_deterministic_per_seed() {
        let a = mesh2d_p(10, 10, 0.5, 3);
        let b = mesh2d_p(10, 10, 0.5, 3);
        let c = mesh2d_p(10, 10, 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
