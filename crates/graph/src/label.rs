//! Vertex relabeling.
//!
//! The paper observes that Shiloach–Vishkin is *labeling-sensitive*: the
//! same torus takes one iteration under row-major labels and up to
//! log n iterations under a random permutation, while the new algorithm
//! is labeling-oblivious. Fig. 4's torus and chain panels exist in both
//! labelings, produced with these helpers.

use rand::seq::SliceRandom;

use crate::gen;
use crate::repr::{CsrGraph, EdgeList, VertexId};

/// The identity permutation of length n.
pub fn identity_permutation(n: usize) -> Vec<VertexId> {
    (0..n as VertexId).collect()
}

/// A uniform random permutation of length n (Fisher–Yates).
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut perm = identity_permutation(n);
    perm.shuffle(&mut gen::rng_from_seed(seed));
    perm
}

/// The inverse of a permutation: `inverse(p)[p[v]] == v`.
///
/// # Panics
///
/// Panics (in debug builds, via index checks in release) if `perm` is not
/// a permutation of `0..n`.
pub fn inverse_permutation(perm: &[VertexId]) -> Vec<VertexId> {
    let mut inv = vec![0 as VertexId; perm.len()];
    let mut seen = vec![false; perm.len()];
    for (v, &p) in perm.iter().enumerate() {
        assert!(!seen[p as usize], "not a permutation: {p} repeats");
        seen[p as usize] = true;
        inv[p as usize] = v as VertexId;
    }
    inv
}

/// Rebuilds `g` with vertex v renamed to `perm[v]`.
///
/// The result is isomorphic to the input; only the integer names (and
/// hence the memory layout and the vertex order every algorithm iterates
/// in) change.
pub fn relabel(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    assert_eq!(
        perm.len(),
        g.num_vertices(),
        "permutation length must equal vertex count"
    );
    debug_assert_eq!(inverse_permutation(perm).len(), perm.len());
    let mut el = EdgeList::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v) in g.edges() {
        el.push(perm[u as usize], perm[v as usize]);
    }
    CsrGraph::from_edge_list(&el)
}

/// Maps a parent array computed on a relabeled graph back to original
/// vertex names: if `parents` answers for graph `relabel(g, perm)`, the
/// result answers for `g`.
///
/// Entries equal to [`NO_VERTEX`](crate::repr::NO_VERTEX) (roots /
/// unreached) are preserved.
pub fn unrelabel_parents(parents: &[VertexId], perm: &[VertexId]) -> Vec<VertexId> {
    use crate::repr::NO_VERTEX;
    let inv = inverse_permutation(perm);
    let mut out = vec![NO_VERTEX; parents.len()];
    for v in 0..parents.len() {
        let relabeled_parent = parents[perm[v] as usize];
        out[v] = if relabeled_parent == NO_VERTEX {
            NO_VERTEX
        } else {
            inv[relabeled_parent as usize]
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, torus2d};
    use crate::validate::count_components;

    #[test]
    fn identity_is_identity() {
        let p = identity_permutation(5);
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let p = random_permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_permutation(100));
        assert_ne!(p, identity_permutation(100)); // vanishingly unlikely
    }

    #[test]
    fn inverse_roundtrips() {
        let p = random_permutation(64, 8);
        let inv = inverse_permutation(&p);
        for v in 0..64 {
            assert_eq!(inv[p[v] as usize], v as VertexId);
            assert_eq!(p[inv[v] as usize], v as VertexId);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn inverse_rejects_non_permutation() {
        inverse_permutation(&[0, 0, 1]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = torus2d(6, 6);
        let p = random_permutation(36, 5);
        let h = relabel(&g, &p);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        assert_eq!(count_components(&h), 1);
        // Degrees are preserved under the permutation.
        for v in g.vertices() {
            assert_eq!(g.degree(v), h.degree(p[v as usize]));
        }
    }

    #[test]
    fn relabel_identity_is_noop_up_to_order() {
        let g = chain(10);
        let h = relabel(&g, &identity_permutation(10));
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = h.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn relabel_adjacency_follows_permutation() {
        let g = chain(4); // 0-1-2-3
        let perm = vec![2, 0, 3, 1]; // old -> new names
        let h = relabel(&g, &perm);
        // Old edge (0,1) -> (2,0); (1,2) -> (0,3); (2,3) -> (3,1).
        let mut e: Vec<_> = h.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 2), (0, 3), (1, 3)]);
    }

    #[test]
    fn unrelabel_parents_roundtrip() {
        use crate::repr::NO_VERTEX;
        // Chain 0-1-2-3 relabeled by perm; BFS tree from new-name of 0.
        let perm = vec![2, 0, 3, 1];
        // On the relabeled graph (edges above), take the tree rooted at 2
        // (= old 0): 2's child 0 (old 1), 0's child 3 (old 2), 3's child 1
        // (old 3).
        let relabeled_parents = vec![2, 3, NO_VERTEX, 0];
        let orig = unrelabel_parents(&relabeled_parents, &perm);
        assert_eq!(orig, vec![NO_VERTEX, 0, 1, 2]);
    }
}
