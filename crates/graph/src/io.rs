//! Graph persistence: plain-text edge lists and the binary CSR format.
//!
//! Text format (whitespace-separated):
//!
//! ```text
//! # optional comment lines
//! n m
//! u v        (m lines, one undirected edge each, 0-based ids)
//! ```
//!
//! This is the minimal interchange the benchmark harness and the examples
//! use to save generated inputs and share them across runs.
//!
//! # Binary CSR format (`STCSRv01`)
//!
//! The job service's graph catalog loads graphs at startup and on
//! remote registration; parsing multi-million-edge text files there is
//! a non-starter. The binary format stores the CSR arrays directly so a
//! load is a header check plus (on Linux) an `mmap` — the arrays are
//! used in place, zero-copy, with the kernel sharing clean pages across
//! every process serving the same file. All integers little-endian:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"STCSRv01"
//!      8     8  n      vertex count (u64)
//!     16     8  m      undirected edge count (u64)
//!     24     8  checksum  FNV-1a 64 over the payload bytes
//!     32     8  reserved  (zero)
//!     40  8(n+1)  offsets   u64 each, CSR row starts
//!      …  4·2m    targets   u32 each, concatenated neighbor lists
//! ```
//!
//! The header is 40 bytes, so `offsets` lands 8-byte aligned and
//! `targets` 4-byte aligned inside any page-aligned mapping. Loads
//! validate the magic, declared lengths against the file size, the
//! checksum, and the full CSR structural invariants (monotone offsets,
//! in-range targets) before the graph is handed out — a corrupt or
//! truncated file is an [`io::Error`], never a panic or an
//! out-of-bounds index later.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::repr::{CsrGraph, EdgeList, MapRegion, SharedSlice, VertexId};

/// Writes `g` in edge-list format to `w`.
pub fn write_edge_list<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads a graph in edge-list format from `r`.
///
/// Lines starting with `#` or `%` are comments. Errors on malformed
/// counts, out-of-range endpoints, or a mismatched edge count.
pub fn read_edge_list<R: Read>(r: R) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut lines = r.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                    continue;
                }
                break t.to_owned();
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "missing header line",
                ))
            }
        }
    };
    let mut it = header.split_whitespace();
    let parse = |s: Option<&str>, what: &str| -> io::Result<usize> {
        s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {e}")))
    };
    let n = parse(it.next(), "vertex count")?;
    let m = parse(it.next(), "edge count")?;
    if n > VertexId::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "vertex count exceeds VertexId range",
        ));
    }

    let mut el = EdgeList::with_capacity(n, m);
    let mut read_edges = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u = parse(it.next(), "edge endpoint")?;
        let v = parse(it.next(), "edge endpoint")?;
        if u >= n || v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge ({u}, {v}) out of range for n = {n}"),
            ));
        }
        el.push(u as VertexId, v as VertexId);
        read_edges += 1;
    }
    if read_edges != m {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("header declares {m} edges but file contains {read_edges}"),
        ));
    }
    Ok(CsrGraph::from_edge_list(&el))
}

/// Writes `g` to the file at `path`.
pub fn save<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Reads a graph from the file at `path`.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Magic bytes opening every binary CSR file.
pub const BINARY_MAGIC: [u8; 8] = *b"STCSRv01";

/// Size of the fixed binary header in bytes.
pub const BINARY_HEADER_BYTES: usize = 40;

/// How [`load_binary_with_info`] actually brought the graph in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadKind {
    /// Zero-copy: the CSR arrays alias a shared `mmap` of the file.
    Mapped,
    /// The file was read and decoded into owned heap arrays.
    Buffered,
}

/// FNV-1a 64-bit over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]). Chosen because it is trivially portable, streams,
/// and one multiply per byte is invisible next to the disk read.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `g` in the binary CSR format to `w`.
pub fn write_binary<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let offsets = g.raw_offsets();
    let targets = g.raw_targets();

    // Payload checksum first: one streaming pass over the encoded bytes.
    let mut sum = FNV_OFFSET;
    for &o in offsets {
        sum = fnv1a(sum, &(o as u64).to_le_bytes());
    }
    for &t in targets {
        sum = fnv1a(sum, &t.to_le_bytes());
    }

    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    w.write_all(&sum.to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?;
    for &o in offsets {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in targets {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// The binary encoding of `g` as an in-memory buffer (the wire
/// protocol's `REGISTER` payload).
pub fn to_binary_vec(g: &CsrGraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        BINARY_HEADER_BYTES + 8 * (g.num_vertices() + 1) + 4 * 2 * g.num_edges(),
    );
    write_binary(g, &mut buf).expect("writing to a Vec is infallible");
    buf
}

/// Decoded and validated header fields.
struct BinaryHeader {
    n: usize,
    arcs: usize,
    checksum: u64,
}

impl BinaryHeader {
    /// Parses and sanity-checks the fixed header against `total_len`,
    /// the number of bytes available for header + payload.
    fn parse(bytes: &[u8; BINARY_HEADER_BYTES], total_len: Option<u64>) -> io::Result<Self> {
        let word = |i: usize| {
            u64::from_le_bytes(bytes[8 * i..8 * (i + 1)].try_into().expect("8-byte window"))
        };
        if bytes[..8] != BINARY_MAGIC {
            return Err(bad_data("not a binary CSR file (bad magic)"));
        }
        let n = word(1);
        let m = word(2);
        let checksum = word(3);
        if n >= VertexId::MAX as u64 {
            return Err(bad_data(format!(
                "vertex count {n} exceeds the VertexId range"
            )));
        }
        let arcs = m
            .checked_mul(2)
            .ok_or_else(|| bad_data("edge count overflows"))?;
        let expected = (BINARY_HEADER_BYTES as u64)
            .checked_add(
                (n + 1)
                    .checked_mul(8)
                    .ok_or_else(|| bad_data("n overflows"))?,
            )
            .and_then(|b| b.checked_add(arcs.checked_mul(4)?))
            .ok_or_else(|| bad_data("declared sizes overflow"))?;
        if let Some(total) = total_len {
            if total != expected {
                return Err(bad_data(format!(
                    "file is {total} bytes but the header declares {expected} \
                     (n = {n}, m = {m}): truncated or corrupt"
                )));
            }
        }
        // The byte budget was validated against u64 sizes; on 32-bit
        // hosts a graph this large cannot be represented anyway.
        let n = usize::try_from(n).map_err(|_| bad_data("graph too large for this host"))?;
        let arcs = usize::try_from(arcs).map_err(|_| bad_data("graph too large for this host"))?;
        Ok(Self { n, arcs, checksum })
    }
}

/// Ceiling on the bytes pre-reserved per array while decoding a stream
/// whose total length is unknown. The header's declared sizes are
/// untrusted until the payload actually arrives: reserving them
/// verbatim would let a 40-byte header demand a multi-TB allocation
/// (or a `Vec` capacity-overflow panic). Under the cap the arrays grow
/// as real bytes come in, so a lying header fails in `read_exact`
/// with `UnexpectedEof` instead of aborting the process.
const MAX_UNVERIFIED_PREALLOC_BYTES: usize = 1 << 20;

/// Reads a graph in the binary CSR format from `r`, decoding into owned
/// arrays (portable; works from sockets and compressed streams).
///
/// Validates magic, declared lengths, checksum, and the CSR structural
/// invariants.
pub fn read_binary<R: Read>(r: R) -> io::Result<CsrGraph> {
    read_binary_from(r, None)
}

/// Buffered decode; `total_len`, when known, is the exact number of
/// bytes (header + payload) available, and the declared sizes are
/// validated against it before anything is allocated.
fn read_binary_from<R: Read>(r: R, total_len: Option<u64>) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(r);
    let mut header = [0u8; BINARY_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let hdr = BinaryHeader::parse(&header, total_len)?;

    // With a validated total length the declared sizes are backed by
    // real bytes and exact reservation is safe; on an open-ended
    // stream they are untrusted, so cap the speculative reservation.
    let cap = |elems: usize, elem_bytes: usize| {
        if total_len.is_some() {
            elems
        } else {
            elems.min(MAX_UNVERIFIED_PREALLOC_BYTES / elem_bytes)
        }
    };
    let mut sum = FNV_OFFSET;
    let mut offsets = Vec::with_capacity(cap(hdr.n + 1, 8));
    let mut buf8 = [0u8; 8];
    for _ in 0..hdr.n + 1 {
        r.read_exact(&mut buf8)?;
        sum = fnv1a(sum, &buf8);
        let o = u64::from_le_bytes(buf8);
        let o = usize::try_from(o).map_err(|_| bad_data("offset exceeds host pointer width"))?;
        offsets.push(o);
    }
    let mut targets = Vec::with_capacity(cap(hdr.arcs, 4));
    let mut buf4 = [0u8; 4];
    for _ in 0..hdr.arcs {
        r.read_exact(&mut buf4)?;
        sum = fnv1a(sum, &buf4);
        targets.push(u32::from_le_bytes(buf4));
    }
    // Trailing garbage after the declared payload is corruption too.
    if r.read(&mut buf4)? != 0 {
        return Err(bad_data("trailing bytes after the declared payload"));
    }
    if sum != hdr.checksum {
        return Err(bad_data(format!(
            "checksum mismatch: stored {:#x}, computed {sum:#x}",
            hdr.checksum
        )));
    }
    CsrGraph::try_from_shared_parts(offsets.into(), targets.into()).map_err(bad_data)
}

/// Decodes a graph from an in-memory binary CSR buffer (e.g. a wire
/// `REGISTER` payload).
///
/// The buffer's length is known, so the declared sizes are checked
/// against it up front: a header claiming billions of edges over a
/// tiny payload is an [`io::Error`], never a huge allocation.
pub fn read_binary_slice(bytes: &[u8]) -> io::Result<CsrGraph> {
    read_binary_from(bytes, Some(bytes.len() as u64))
}

/// Writes `g` in the binary CSR format to the file at `path`.
pub fn save_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads a binary CSR file, preferring the zero-copy `mmap` path.
///
/// See [`load_binary_with_info`]; this drops the [`LoadKind`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    load_binary_with_info(path).map(|(g, _)| g)
}

/// Loads a binary CSR file and reports how.
///
/// On 64-bit little-endian Linux the file is `mmap`ed and the CSR
/// arrays are used in place ([`LoadKind::Mapped`]): no allocation, no
/// copy, and clean pages shared with every other mapping of the same
/// file. Everywhere else — and whenever the mapping fails — the load
/// falls back to the portable buffered decoder ([`LoadKind::Buffered`]).
/// Both paths run the full header/checksum/structure validation.
pub fn load_binary_with_info<P: AsRef<Path>>(path: P) -> io::Result<(CsrGraph, LoadKind)> {
    let file = std::fs::File::open(path.as_ref())?;
    #[cfg(all(
        target_os = "linux",
        target_pointer_width = "64",
        target_endian = "little"
    ))]
    {
        match MapRegion::map_file(&file).map(Arc::new).map(load_mapped) {
            Ok(Ok(g)) => return Ok((g, LoadKind::Mapped)),
            // Structural/checksum failures are real errors either way;
            // re-decoding the same bytes buffered cannot fix them.
            Ok(Err(e)) => return Err(e),
            // Only the mapping itself failing (e.g. a pseudo-file that
            // cannot be mapped) falls back to the buffered path.
            Err(_) => {}
        }
    }
    read_binary(file).map(|g| (g, LoadKind::Buffered))
}

/// Zero-copy construction from a mapped file: validate, then window the
/// CSR arrays directly onto the mapping.
#[cfg(all(
    target_os = "linux",
    target_pointer_width = "64",
    target_endian = "little"
))]
fn load_mapped(region: Arc<MapRegion>) -> io::Result<CsrGraph> {
    let bytes = region.bytes();
    if bytes.len() < BINARY_HEADER_BYTES {
        return Err(bad_data("file shorter than the binary header"));
    }
    let header: &[u8; BINARY_HEADER_BYTES] = bytes[..BINARY_HEADER_BYTES]
        .try_into()
        .expect("length checked");
    let hdr = BinaryHeader::parse(header, Some(bytes.len() as u64))?;
    if fnv1a(FNV_OFFSET, &bytes[BINARY_HEADER_BYTES..]) != hdr.checksum {
        return Err(bad_data("checksum mismatch: file corrupt"));
    }
    // On this target usize is exactly the stored u64 and the byte order
    // matches, so the payload can be viewed in place. The header is 40
    // bytes, keeping both windows naturally aligned in the page-aligned
    // mapping.
    let offsets_at = BINARY_HEADER_BYTES;
    let targets_at = offsets_at + 8 * (hdr.n + 1);
    let offsets = SharedSlice::<usize>::from_region(Arc::clone(&region), offsets_at, hdr.n + 1)
        .ok_or_else(|| bad_data("offsets window out of bounds or misaligned"))?;
    let targets = SharedSlice::<VertexId>::from_region(region, targets_at, hdr.arcs)
        .ok_or_else(|| bad_data("targets window out of bounds or misaligned"))?;
    CsrGraph::try_from_shared_parts(offsets, targets).map_err(bad_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_gnm, torus2d};

    fn roundtrip_mem(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = random_gnm(50, 80, 1);
        let h = roundtrip_mem(&g);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_edges(), h.num_edges());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = h.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_empty_and_edgeless() {
        let g = CsrGraph::empty(4);
        let h = roundtrip_mem(&g);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n% another\n3 2\n0 1\n# inline comment line\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_edge_list("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_counts() {
        assert!(read_edge_list("x y\n".as_bytes()).is_err());
        assert!(read_edge_list("3\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        assert!(read_edge_list("2 1\n0 5\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        assert!(read_edge_list("3 2\n0 1\n".as_bytes()).is_err());
        assert!(read_edge_list("3 1\n0 1\n1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = torus2d(6, 6);
        let path = std::env::temp_dir().join(format!("st_graph_io_test_{}.el", std::process::id()));
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), h.num_edges());
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("st_graph_bin_{tag}_{}.stcsr", std::process::id()))
    }

    #[test]
    fn binary_roundtrip_in_memory() {
        for g in [
            random_gnm(200, 500, 3),
            torus2d(9, 9),
            CsrGraph::empty(5),
            CsrGraph::empty(0),
        ] {
            let buf = to_binary_vec(&g);
            let h = read_binary_slice(&buf).unwrap();
            assert_eq!(g, h);
        }
    }

    #[test]
    fn binary_file_roundtrip_prefers_mmap() {
        let g = random_gnm(300, 700, 11);
        let path = tmp("roundtrip");
        save_binary(&g, &path).unwrap();
        let (h, kind) = load_binary_with_info(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, h);
        if cfg!(all(
            target_os = "linux",
            target_pointer_width = "64",
            target_endian = "little"
        )) {
            assert_eq!(kind, LoadKind::Mapped, "linux loads must map");
            assert!(h.is_mapped());
            // Clones of a mapped graph alias the same pages.
            let c = h.clone();
            assert!(c.is_mapped());
            assert_eq!(c, h);
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = to_binary_vec(&torus2d(4, 4));
        buf[0] ^= 0xFF;
        let err = read_binary_slice(&buf).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn binary_rejects_flipped_payload_bit() {
        let mut buf = to_binary_vec(&torus2d(4, 4));
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_binary_slice(&buf).unwrap_err();
        // Either the checksum or the structural validation trips,
        // depending on which field the flip landed in.
        assert!(
            err.to_string().contains("checksum") || err.to_string().contains("targets"),
            "{err}"
        );
    }

    #[test]
    fn binary_rejects_truncation_and_trailing_garbage() {
        let buf = to_binary_vec(&torus2d(4, 4));
        assert!(read_binary_slice(&buf[..buf.len() - 3]).is_err());
        assert!(read_binary_slice(&buf[..BINARY_HEADER_BYTES / 2]).is_err());
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0, 0, 0, 0]);
        assert!(read_binary_slice(&padded).is_err());
    }

    /// A 40-byte header whose declared sizes are attacker-controlled.
    fn hostile_header(n: u64, m: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(BINARY_HEADER_BYTES);
        buf.extend_from_slice(&BINARY_MAGIC);
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum
        buf.extend_from_slice(&0u64.to_le_bytes()); // reserved
        buf
    }

    #[test]
    fn huge_declared_sizes_error_without_allocating() {
        // A bare header declaring astronomical sizes must be a clean
        // error on both decode paths — no capacity-overflow panic, no
        // multi-TB reservation (the wire REGISTER path feeds exactly
        // these bytes to read_binary_slice).
        for (n, m) in [
            (3, 1u64 << 59),                // arcs*4 still fits u64
            (u32::MAX as u64 - 1, 3),       // offsets alone would be ~32 GB
            (u32::MAX as u64 - 1, 1 << 59), // both
        ] {
            let buf = hostile_header(n, m);
            assert!(read_binary_slice(&buf).is_err(), "slice n={n} m={m}");
            assert!(read_binary(&buf[..]).is_err(), "stream n={n} m={m}");
        }
    }

    #[test]
    fn slice_decode_rejects_length_mismatch_before_reading_payload() {
        // Declared sizes must match the slice length exactly.
        let mut buf = hostile_header(3, 2);
        buf.extend_from_slice(&[0u8; 16]); // far short of 8*4 + 4*4
        let err = read_binary_slice(&buf).unwrap_err();
        assert!(err.to_string().contains("truncated or corrupt"), "{err}");
    }

    #[test]
    fn mapped_load_rejects_corruption_without_fallback() {
        let g = torus2d(8, 8);
        let path = tmp("corrupt");
        let mut buf = to_binary_vec(&g);
        // Flip a byte inside the targets payload.
        let idx = buf.len() - 2;
        buf[idx] ^= 0x40;
        std::fs::write(&path, &buf).unwrap();
        assert!(load_binary(&path).is_err());
        // Truncated file: header/length mismatch.
        std::fs::write(&path, &buf[..buf.len() - 8]).unwrap();
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_graph_runs_like_an_owned_one() {
        // The arrays coming from a mapping must be indistinguishable to
        // consumers: same neighbors, same degree stats, same edges.
        let g = random_gnm(500, 1200, 5);
        let path = tmp("consume");
        save_binary(&g, &path).unwrap();
        let h = load_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.degree_stats(), h.degree_stats());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), h.neighbors(v));
        }
        assert!(h.is_symmetric());
    }

    #[test]
    fn text_files_are_not_binary() {
        let g = torus2d(4, 4);
        let path = tmp("text");
        save(&g, &path).unwrap();
        assert!(load_binary(&path).is_err(), "text must fail the magic");
        std::fs::remove_file(&path).ok();
    }
}
