//! Plain-text graph persistence.
//!
//! Format (whitespace-separated):
//!
//! ```text
//! # optional comment lines
//! n m
//! u v        (m lines, one undirected edge each, 0-based ids)
//! ```
//!
//! This is the minimal interchange the benchmark harness and the examples
//! use to save generated inputs and share them across runs.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::repr::{CsrGraph, EdgeList, VertexId};

/// Writes `g` in edge-list format to `w`.
pub fn write_edge_list<W: Write>(g: &CsrGraph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads a graph in edge-list format from `r`.
///
/// Lines starting with `#` or `%` are comments. Errors on malformed
/// counts, out-of-range endpoints, or a mismatched edge count.
pub fn read_edge_list<R: Read>(r: R) -> io::Result<CsrGraph> {
    let r = BufReader::new(r);
    let mut lines = r.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                    continue;
                }
                break t.to_owned();
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "missing header line",
                ))
            }
        }
    };
    let mut it = header.split_whitespace();
    let parse = |s: Option<&str>, what: &str| -> io::Result<usize> {
        s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {e}")))
    };
    let n = parse(it.next(), "vertex count")?;
    let m = parse(it.next(), "edge count")?;
    if n > VertexId::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "vertex count exceeds VertexId range",
        ));
    }

    let mut el = EdgeList::with_capacity(n, m);
    let mut read_edges = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u = parse(it.next(), "edge endpoint")?;
        let v = parse(it.next(), "edge endpoint")?;
        if u >= n || v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge ({u}, {v}) out of range for n = {n}"),
            ));
        }
        el.push(u as VertexId, v as VertexId);
        read_edges += 1;
    }
    if read_edges != m {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("header declares {m} edges but file contains {read_edges}"),
        ));
    }
    Ok(CsrGraph::from_edge_list(&el))
}

/// Writes `g` to the file at `path`.
pub fn save<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Reads a graph from the file at `path`.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_gnm, torus2d};

    fn roundtrip_mem(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = random_gnm(50, 80, 1);
        let h = roundtrip_mem(&g);
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_edges(), h.num_edges());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = h.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_empty_and_edgeless() {
        let g = CsrGraph::empty(4);
        let h = roundtrip_mem(&g);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n% another\n3 2\n0 1\n# inline comment line\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_edge_list("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_counts() {
        assert!(read_edge_list("x y\n".as_bytes()).is_err());
        assert!(read_edge_list("3\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        assert!(read_edge_list("2 1\n0 5\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        assert!(read_edge_list("3 2\n0 1\n".as_bytes()).is_err());
        assert!(read_edge_list("3 1\n0 1\n1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = torus2d(6, 6);
        let path = std::env::temp_dir().join(format!("st_graph_io_test_{}.el", std::process::id()));
        save(&g, &path).unwrap();
        let h = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), h.num_edges());
    }
}
