#![warn(missing_docs)]

//! # st-graph — graph substrate for the SMP spanning-tree study
//!
//! This crate provides everything the spanning-tree algorithms of
//! Bader & Cong (IPDPS 2004) consume:
//!
//! * [`repr`] — compressed sparse row ([`CsrGraph`]) and edge-list
//!   ([`EdgeList`]) representations with a deduplicating [`GraphBuilder`].
//! * [`gen`] — the paper's eight experiment graph families (2D torus,
//!   2D60/3D40 meshes, random G(n, m), geometric k-NN and AD3, geographic
//!   flat/hierarchical, degenerate chain) plus auxiliary families used by
//!   the tests.
//! * [`label`] — vertex relabeling (row-major vs. random permutation), which
//!   the paper shows strongly affects Shiloach–Vishkin but not the new
//!   algorithm.
//! * [`preprocess`] — the degree-2 chain-elimination preprocessing step
//!   described in §2 of the paper.
//! * [`validate`] — spanning-tree/forest verification oracles and a
//!   reference sequential connected-components implementation.
//! * [`io`] — plain-text edge-list persistence.
//! * [`delta`] — batch edge mutations ([`EdgeBatch`]) and persistent
//!   copy-on-write CSR overlays ([`CsrDelta`]) for the versioned,
//!   batch-dynamic graph path.
//!
//! All generators are deterministic functions of an explicit seed so that
//! every experiment in the benchmark harness is reproducible.

pub mod delta;
pub mod dsu;
pub mod gen;
pub mod io;
pub mod label;
pub mod preprocess;
pub mod repr;
pub mod stats;
pub mod subgraph;
pub mod validate;
pub mod weighted;

pub use delta::{BatchError, BatchOutcome, CsrDelta, EdgeBatch, GraphView, Neighbors};
pub use dsu::DisjointSets;
pub use repr::{CsrGraph, EdgeList, GraphBuilder, VertexId, NO_VERTEX};
pub use weighted::{Weight, WeightedGraph};

/// Convenience prelude bringing the common types and traits into scope.
pub mod prelude {
    pub use crate::gen;
    pub use crate::label::{identity_permutation, random_permutation, relabel};
    pub use crate::repr::{CsrGraph, EdgeList, GraphBuilder, VertexId, NO_VERTEX};
    pub use crate::validate::{is_spanning_forest, is_spanning_tree, ForestCheck};
}
