//! Edge-weighted graphs, for the minimum-spanning-forest extension.
//!
//! The paper's future work names "minimum spanning tree (forest)" as the
//! next target for its techniques; [`WeightedGraph`] carries the weights
//! in an array parallel to the CSR target array, so the traversal-style
//! access pattern (and the cost model's accounting) stays identical to
//! the unweighted case.

use crate::gen::rng_from_seed;
use crate::repr::{CsrGraph, EdgeList, VertexId};
use rand::Rng;

/// Edge weight type: `u32` keeps (weight, edge-id) packable into a
/// single `u64` for atomic min-reduction in parallel Borůvka.
pub type Weight = u32;

/// An undirected graph with a weight per edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    csr: CsrGraph,
    /// Weight of each directed arc, aligned with
    /// [`CsrGraph::raw_targets`]; the two arcs of an undirected edge
    /// carry equal weights.
    arc_weights: Box<[Weight]>,
}

impl WeightedGraph {
    /// Builds from weighted undirected edges. Duplicate edges collapse
    /// keeping the **minimum** weight (the only one an MST could use);
    /// self-loops are dropped.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut best: std::collections::HashMap<(VertexId, VertexId), Weight> =
            std::collections::HashMap::new();
        for (u, v, w) in edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge endpoint out of range"
            );
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            best.entry(key)
                .and_modify(|cur| *cur = (*cur).min(w))
                .or_insert(w);
        }
        let mut el = EdgeList::with_capacity(num_vertices, best.len());
        let mut canonical: Vec<((VertexId, VertexId), Weight)> = best.into_iter().collect();
        canonical.sort_unstable();
        for &((u, v), _) in &canonical {
            el.push(u, v);
        }
        let csr = CsrGraph::from_edge_list(&el);
        // Assign arc weights by looking up each arc's canonical edge.
        let lookup: std::collections::HashMap<(VertexId, VertexId), Weight> =
            canonical.into_iter().collect();
        let mut arc_weights = Vec::with_capacity(csr.raw_targets().len());
        for u in csr.vertices() {
            for &v in csr.neighbors(u) {
                let key = if u < v { (u, v) } else { (v, u) };
                arc_weights.push(lookup[&key]);
            }
        }
        Self {
            csr,
            arc_weights: arc_weights.into_boxed_slice(),
        }
    }

    /// Attaches deterministic pseudo-random weights in `1..=max_weight`
    /// to an existing graph.
    pub fn with_random_weights(g: &CsrGraph, max_weight: Weight, seed: u64) -> Self {
        assert!(max_weight >= 1, "weights must be positive");
        let mut rng = rng_from_seed(seed);
        let edges: Vec<(VertexId, VertexId, Weight)> = g
            .edges()
            .map(|(u, v)| (u, v, rng.gen_range(1..=max_weight)))
            .collect();
        Self::from_weighted_edges(g.num_vertices(), edges)
    }

    /// The underlying unweighted topology.
    pub fn topology(&self) -> &CsrGraph {
        &self.csr
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Neighbors of `v` with their edge weights.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let offsets = self.csr.raw_offsets();
        let lo = offsets[v as usize];
        let hi = offsets[v as usize + 1];
        self.csr.raw_targets()[lo..hi]
            .iter()
            .zip(self.arc_weights[lo..hi].iter())
            .map(|(&t, &w)| (t, w))
    }

    /// Every undirected edge once, as (u, v, weight) with u ≤ v.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.csr.vertices().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u <= v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Weight of the arc at raw index `arc` (aligned with
    /// [`CsrGraph::raw_targets`]).
    pub fn arc_weight(&self, arc: usize) -> Weight {
        self.arc_weights[arc]
    }

    /// Total weight of an edge set given as (u, v) pairs.
    ///
    /// # Panics
    ///
    /// Panics if a pair is not an edge of the graph.
    pub fn edge_set_weight(&self, edges: &[(VertexId, VertexId)]) -> u64 {
        edges
            .iter()
            .map(|&(u, v)| {
                self.neighbors(u)
                    .find(|&(t, _)| t == v)
                    .map(|(_, w)| w as u64)
                    .unwrap_or_else(|| panic!("({u}, {v}) is not an edge"))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_connected, torus2d};

    #[test]
    fn construction_and_symmetric_weights() {
        let wg = WeightedGraph::from_weighted_edges(3, vec![(0, 1, 5), (1, 2, 7)]);
        assert_eq!(wg.num_edges(), 2);
        let w01 = wg.neighbors(0).find(|&(v, _)| v == 1).unwrap().1;
        let w10 = wg.neighbors(1).find(|&(v, _)| v == 0).unwrap().1;
        assert_eq!(w01, 5);
        assert_eq!(w10, 5);
    }

    #[test]
    fn duplicates_keep_min_weight_and_loops_drop() {
        let wg =
            WeightedGraph::from_weighted_edges(3, vec![(0, 1, 9), (1, 0, 4), (0, 1, 6), (2, 2, 1)]);
        assert_eq!(wg.num_edges(), 1);
        assert_eq!(wg.neighbors(0).next().unwrap().1, 4);
    }

    #[test]
    fn random_weights_are_deterministic_and_in_range() {
        let g = torus2d(6, 6);
        let a = WeightedGraph::with_random_weights(&g, 100, 3);
        let b = WeightedGraph::with_random_weights(&g, 100, 3);
        assert_eq!(a, b);
        for (_, _, w) in a.weighted_edges() {
            assert!((1..=100).contains(&w));
        }
        assert_eq!(a.num_edges(), g.num_edges());
    }

    #[test]
    fn weighted_edges_listed_once() {
        let g = random_connected(50, 30, 1);
        let wg = WeightedGraph::with_random_weights(&g, 10, 2);
        assert_eq!(wg.weighted_edges().count(), g.num_edges());
    }

    #[test]
    fn edge_set_weight_sums() {
        let wg = WeightedGraph::from_weighted_edges(4, vec![(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        assert_eq!(wg.edge_set_weight(&[(0, 1), (2, 3)]), 6);
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn edge_set_weight_rejects_non_edges() {
        let wg = WeightedGraph::from_weighted_edges(4, vec![(0, 1, 2)]);
        wg.edge_set_weight(&[(0, 3)]);
    }
}
