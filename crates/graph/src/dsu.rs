//! Disjoint-set union (union-find).
//!
//! Used by the Kruskal MST baseline and as an independent oracle for the
//! connectivity algorithms. Path halving + union by size gives the
//! standard near-constant amortized operations.

use crate::repr::VertexId;

/// A disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<VertexId>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as VertexId).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Representative of `v`'s set (path halving).
    pub fn find(&mut self, mut v: VertexId) -> VertexId {
        loop {
            let p = self.parent[v as usize];
            if p == v {
                return v;
            }
            let gp = self.parent[p as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
    }

    /// True when `u` and `v` are in the same set.
    pub fn same(&mut self, u: VertexId, v: VertexId) -> bool {
        self.find(u) == self.find(v)
    }

    /// Merges the sets of `u` and `v`; returns `true` when they were
    /// distinct (union by size).
    pub fn union(&mut self, u: VertexId, v: VertexId) -> bool {
        let (mut ru, mut rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        if self.size[ru as usize] < self.size[rv as usize] {
            std::mem::swap(&mut ru, &mut rv);
        }
        self.parent[rv as usize] = ru;
        self.size[ru as usize] += self.size[rv as usize];
        self.sets -= 1;
        true
    }

    /// Size of `v`'s set.
    pub fn set_size(&mut self, v: VertexId) -> usize {
        let r = self.find(v);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = DisjointSets::new(4);
        assert_eq!(d.num_sets(), 4);
        assert!(!d.same(0, 1));
        assert_eq!(d.set_size(2), 1);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2), "already merged");
        assert_eq!(d.num_sets(), 3);
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
        assert_eq!(d.set_size(1), 3);
    }

    #[test]
    fn chain_of_unions_compresses() {
        let n = 1000;
        let mut d = DisjointSets::new(n);
        for v in 1..n as VertexId {
            d.union(v - 1, v);
        }
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.set_size(0), n);
        // After finds, paths are short: every find terminates quickly
        // (smoke test for path halving).
        for v in 0..n as VertexId {
            assert_eq!(d.find(v), d.find(0));
        }
    }

    #[test]
    fn matches_component_structure_of_random_graph() {
        let g = crate::gen::random_gnm(300, 250, 9);
        let mut d = DisjointSets::new(300);
        for (u, v) in g.edges() {
            d.union(u, v);
        }
        assert_eq!(d.num_sets(), crate::validate::count_components(&g));
    }
}
