//! Batch edge mutations and copy-on-write CSR overlays.
//!
//! A flat CSR cannot be edited in place — inserting one edge shifts
//! every offset after it — so mutation happens at two granularities:
//!
//! * an [`EdgeBatch`] names the insertions and deletions of one atomic
//!   update, validated against the graph's vertex range;
//! * a [`CsrDelta`] is a *persistent* overlay on an immutable base
//!   [`CsrGraph`]: untouched vertices read their neighbor row straight
//!   from the base, touched vertices own a private copy-on-write row.
//!   Applying a batch produces a **new** delta sharing every untouched
//!   row with its predecessor, so readers of older versions are never
//!   invalidated — the versioned-catalog property the service builds
//!   on.
//!
//! Overlay reads cost one hash probe before the row access, so a delta
//! whose patch set has grown past a threshold fraction of the vertices
//! should be flattened back to a plain CSR ([`CsrDelta::materialize`],
//! gated by [`CsrDelta::patched_fraction`]); the catalog does this
//! automatically.
//!
//! The [`Neighbors`] trait abstracts over both representations so graph
//! consumers that only need adjacency (the incremental forest
//! maintainer's replacement-edge search, validation walks) run on
//! either without materializing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::repr::{CsrGraph, VertexId};

/// Read-only adjacency, implemented by both the flat [`CsrGraph`] and
/// the copy-on-write [`CsrDelta`].
pub trait Neighbors {
    /// Number of vertices n.
    fn num_vertices(&self) -> usize;
    /// Number of undirected edges m.
    fn num_edges(&self) -> usize;
    /// The neighbor row of `v`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];
    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }
}

impl Neighbors for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::neighbors(self, v)
    }
}

/// A rejected batch: the offending edge and why it cannot apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// An endpoint is ≥ the graph's vertex count (batches mutate edges,
    /// never grow the vertex set).
    VertexOutOfRange(VertexId, VertexId),
    /// Self-loops carry no connectivity and are rejected outright.
    SelfLoop(VertexId),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::VertexOutOfRange(u, v) => {
                write!(f, "edge ({u}, {v}) names a vertex outside the graph")
            }
            BatchError::SelfLoop(u) => write!(f, "self-loop ({u}, {u}) rejected"),
        }
    }
}

impl std::error::Error for BatchError {}

/// One atomic set of edge insertions and deletions.
///
/// Semantics are idempotent and order-defined: **deletions apply
/// first**, then insertions (an edge in both lists ends up present).
/// Inserting an edge that already exists and deleting one that does
/// not are no-ops, reported through
/// [`BatchOutcome::edges_added`] / [`edges_removed`](BatchOutcome::edges_removed)
/// so callers can see what actually changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Undirected edges to insert.
    pub inserts: Vec<(VertexId, VertexId)>,
    /// Undirected edges to delete.
    pub deletes: Vec<(VertexId, VertexId)>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an insertion.
    pub fn insert(mut self, u: VertexId, v: VertexId) -> Self {
        self.inserts.push((u, v));
        self
    }

    /// Adds a deletion.
    pub fn delete(mut self, u: VertexId, v: VertexId) -> Self {
        self.deletes.push((u, v));
        self
    }

    /// Total operations named by the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the batch names no operations.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Checks every edge against an `n`-vertex graph.
    pub fn validate(&self, n: usize) -> Result<(), BatchError> {
        for &(u, v) in self.inserts.iter().chain(self.deletes.iter()) {
            if u == v {
                return Err(BatchError::SelfLoop(u));
            }
            if u as usize >= n || v as usize >= n {
                return Err(BatchError::VertexOutOfRange(u, v));
            }
        }
        Ok(())
    }
}

/// What applying a batch actually changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Insertions that were not already present.
    pub edges_added: usize,
    /// Deletions that named a live edge.
    pub edges_removed: usize,
}

/// A persistent copy-on-write overlay over an immutable base CSR.
///
/// Cloning is cheap (`Arc` per patched row); [`apply`](Self::apply)
/// returns a new delta and leaves `self` untouched, so every graph
/// version stays readable for as long as something holds it.
#[derive(Clone, Debug)]
pub struct CsrDelta {
    base: Arc<CsrGraph>,
    /// Replacement neighbor rows, sorted ascending (base rows are in
    /// construction order; a row is sorted when first copied out so
    /// later edits binary-search instead of scanning).
    rows: HashMap<VertexId, Arc<Vec<VertexId>>>,
    num_edges: usize,
}

impl CsrDelta {
    /// An overlay with no patches: every read falls through to `base`.
    pub fn from_base(base: Arc<CsrGraph>) -> Self {
        let num_edges = base.num_edges();
        Self {
            base,
            rows: HashMap::new(),
            num_edges,
        }
    }

    /// The immutable base graph this overlay patches.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Number of vertices (fixed by the base — batches never grow it).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Current number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Vertices whose rows are patched.
    pub fn patched_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Patched fraction of the vertex set — the catalog's rebuild
    /// trigger: once a delta covers this much of the graph, overlay
    /// reads stop paying for themselves.
    pub fn patched_fraction(&self) -> f64 {
        if self.base.num_vertices() == 0 {
            return 0.0;
        }
        self.rows.len() as f64 / self.base.num_vertices() as f64
    }

    /// The neighbor row of `v` (patched row if present, else base).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.rows.get(&v) {
            Some(row) => row,
            None => self.base.neighbors(v),
        }
    }

    /// True when the undirected edge (u, v) is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.rows.get(&u) {
            Some(row) => row.binary_search(&v).is_ok(),
            None => self.base.neighbors(u).contains(&v),
        }
    }

    /// Applies `batch` (deletes first, then inserts), returning the
    /// successor delta and what actually changed. `self` is untouched;
    /// rows not named by the batch are shared between the versions.
    pub fn apply(&self, batch: &EdgeBatch) -> Result<(CsrDelta, BatchOutcome), BatchError> {
        batch.validate(self.num_vertices())?;
        let mut next = self.clone();
        let mut outcome = BatchOutcome::default();
        for &(u, v) in &batch.deletes {
            if next.remove_one(u, v) {
                let existed = next.remove_one(v, u);
                debug_assert!(existed, "undirected rows out of sync");
                next.num_edges -= 1;
                outcome.edges_removed += 1;
            }
        }
        for &(u, v) in &batch.inserts {
            if next.insert_one(u, v) {
                let fresh = next.insert_one(v, u);
                debug_assert!(fresh, "undirected rows out of sync");
                next.num_edges += 1;
                outcome.edges_added += 1;
            }
        }
        Ok((next, outcome))
    }

    /// Copies `v`'s row out of the base (sorted) on first touch and
    /// returns it mutably; `Arc::make_mut` keeps rows still shared with
    /// predecessor versions intact.
    fn row_mut(&mut self, v: VertexId) -> &mut Vec<VertexId> {
        let base = &self.base;
        let row = self.rows.entry(v).or_insert_with(|| {
            let mut copy = base.neighbors(v).to_vec();
            copy.sort_unstable();
            Arc::new(copy)
        });
        Arc::make_mut(row)
    }

    /// Removes one occurrence of `target` from `v`'s row; false when
    /// absent (the row is then left unpatched).
    fn remove_one(&mut self, v: VertexId, target: VertexId) -> bool {
        let present = match self.rows.get(&v) {
            Some(row) => row.binary_search(&target).is_ok(),
            None => self.base.neighbors(v).contains(&target),
        };
        if !present {
            return false;
        }
        let row = self.row_mut(v);
        let at = row.binary_search(&target).expect("presence checked above");
        row.remove(at);
        true
    }

    /// Inserts `target` into `v`'s sorted row; false when already
    /// present (the row is then left unpatched).
    fn insert_one(&mut self, v: VertexId, target: VertexId) -> bool {
        let present = match self.rows.get(&v) {
            Some(row) => row.binary_search(&target).is_ok(),
            None => self.base.neighbors(v).contains(&target),
        };
        if present {
            return false;
        }
        let row = self.row_mut(v);
        let at = row.binary_search(&target).expect_err("absence checked above");
        row.insert(at, target);
        true
    }

    /// Flattens the overlay into a plain CSR (one merge pass over the
    /// rows). The result is a fresh, offset-contiguous graph suitable
    /// as the base of future deltas.
    pub fn materialize(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for v in 0..n {
            total += self.neighbors(v as VertexId).len();
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total);
        for v in 0..n {
            targets.extend_from_slice(self.neighbors(v as VertexId));
        }
        CsrGraph::from_raw_parts(offsets, targets)
    }
}

impl Neighbors for CsrDelta {
    fn num_vertices(&self) -> usize {
        CsrDelta::num_vertices(self)
    }
    fn num_edges(&self) -> usize {
        CsrDelta::num_edges(self)
    }
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrDelta::neighbors(self, v)
    }
}

/// A graph version as the catalog stores it: either a flat CSR or a
/// copy-on-write overlay. Cloning clones `Arc`s, never graph data.
#[derive(Clone, Debug)]
pub enum GraphView {
    /// A plain contiguous CSR (registered graphs, rebuilt versions).
    Flat(Arc<CsrGraph>),
    /// A copy-on-write overlay produced by a batch update.
    Delta(Arc<CsrDelta>),
}

impl GraphView {
    /// Applies a batch, producing the successor view (always a delta;
    /// the caller decides when to flatten via
    /// [`patched_fraction`](Self::patched_fraction)).
    pub fn apply(&self, batch: &EdgeBatch) -> Result<(GraphView, BatchOutcome), BatchError> {
        let delta = match self {
            GraphView::Flat(g) => CsrDelta::from_base(Arc::clone(g)),
            GraphView::Delta(d) => (**d).clone(),
        };
        let (next, outcome) = delta.apply(batch)?;
        Ok((GraphView::Delta(Arc::new(next)), outcome))
    }

    /// Patched fraction of the underlying delta (0 for flat views).
    pub fn patched_fraction(&self) -> f64 {
        match self {
            GraphView::Flat(_) => 0.0,
            GraphView::Delta(d) => d.patched_fraction(),
        }
    }

    /// A flat CSR of this version: free for flat views, one merge pass
    /// for deltas. Callers should memoize per version.
    pub fn materialize(&self) -> Arc<CsrGraph> {
        match self {
            GraphView::Flat(g) => Arc::clone(g),
            GraphView::Delta(d) => Arc::new(d.materialize()),
        }
    }
}

impl Neighbors for GraphView {
    fn num_vertices(&self) -> usize {
        match self {
            GraphView::Flat(g) => g.num_vertices(),
            GraphView::Delta(d) => d.num_vertices(),
        }
    }
    fn num_edges(&self) -> usize {
        match self {
            GraphView::Flat(g) => g.num_edges(),
            GraphView::Delta(d) => d.num_edges(),
        }
    }
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self {
            GraphView::Flat(g) => g.neighbors(v),
            GraphView::Delta(d) => d.neighbors(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn delta_of(g: CsrGraph) -> CsrDelta {
        CsrDelta::from_base(Arc::new(g))
    }

    #[test]
    fn empty_delta_reads_through_to_base() {
        let g = gen::torus2d(4, 4);
        let d = delta_of(g.clone());
        assert_eq!(d.num_vertices(), 16);
        assert_eq!(d.num_edges(), g.num_edges());
        for v in 0..16u32 {
            assert_eq!(d.neighbors(v), g.neighbors(v));
        }
        assert_eq!(d.patched_vertices(), 0);
        assert_eq!(d.patched_fraction(), 0.0);
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        // chain 0-1-2-3: delete (1,2), insert (0,3).
        let d = delta_of(gen::chain(4));
        let batch = EdgeBatch::new().delete(1, 2).insert(0, 3);
        let (next, out) = d.apply(&batch).unwrap();
        assert_eq!(out, BatchOutcome { edges_added: 1, edges_removed: 1 });
        assert_eq!(next.num_edges(), 3);
        assert!(!next.has_edge(1, 2));
        assert!(!next.has_edge(2, 1));
        assert!(next.has_edge(0, 3));
        assert!(next.has_edge(3, 0));
        // The predecessor version is untouched.
        assert!(d.has_edge(1, 2));
        assert!(!d.has_edge(0, 3));
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn redundant_operations_are_noops() {
        let d = delta_of(gen::chain(3));
        let batch = EdgeBatch::new()
            .insert(0, 1) // already present
            .delete(0, 2); // never existed
        let (next, out) = d.apply(&batch).unwrap();
        assert_eq!(out, BatchOutcome::default());
        assert_eq!(next.num_edges(), d.num_edges());
        assert_eq!(next.patched_vertices(), 0, "no-ops patch nothing");
    }

    #[test]
    fn deletes_apply_before_inserts() {
        let d = delta_of(gen::chain(3));
        let batch = EdgeBatch::new().delete(0, 1).insert(0, 1);
        let (next, out) = d.apply(&batch).unwrap();
        assert!(next.has_edge(0, 1), "delete-then-insert ends present");
        assert_eq!(out.edges_added, 1);
        assert_eq!(out.edges_removed, 1);
        assert_eq!(next.num_edges(), d.num_edges());
    }

    #[test]
    fn validation_rejects_bad_edges() {
        let d = delta_of(gen::chain(3));
        assert_eq!(
            d.apply(&EdgeBatch::new().insert(1, 1)).unwrap_err(),
            BatchError::SelfLoop(1)
        );
        assert_eq!(
            d.apply(&EdgeBatch::new().delete(0, 7)).unwrap_err(),
            BatchError::VertexOutOfRange(0, 7)
        );
    }

    #[test]
    fn materialize_matches_overlay_reads() {
        let d = delta_of(gen::torus2d(4, 4));
        let (next, _) = d
            .apply(&EdgeBatch::new().delete(0, 1).insert(0, 10).insert(3, 12))
            .unwrap();
        let flat = next.materialize();
        assert_eq!(flat.num_vertices(), next.num_vertices());
        assert_eq!(flat.num_edges(), next.num_edges());
        for v in 0..16u32 {
            assert_eq!(flat.neighbors(v), next.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn successive_versions_share_untouched_rows() {
        let d = delta_of(gen::torus2d(8, 8));
        let (v2, _) = d.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
        let (v3, _) = v2.apply(&EdgeBatch::new().delete(2, 3)).unwrap();
        // v3 patched rows 0,1 (from v2, shared) and 2,3 (fresh).
        assert_eq!(v2.patched_vertices(), 2);
        assert_eq!(v3.patched_vertices(), 4);
        assert!(Arc::ptr_eq(
            v2.rows.get(&0).unwrap(),
            v3.rows.get(&0).unwrap()
        ));
    }

    #[test]
    fn graph_view_applies_and_flattens() {
        let view = GraphView::Flat(Arc::new(gen::chain(5)));
        let (next, out) = view.apply(&EdgeBatch::new().insert(0, 4)).unwrap();
        assert_eq!(out.edges_added, 1);
        assert_eq!(Neighbors::num_edges(&next), 5);
        let flat = next.materialize();
        assert!(flat.neighbors(0).contains(&4));
        assert!(next.patched_fraction() > 0.0);
        assert_eq!(view.patched_fraction(), 0.0);
    }

    #[test]
    fn multigraph_duplicates_delete_one_at_a_time() {
        // Base built with a duplicated edge (0,1) x2.
        let edges = crate::repr::EdgeList::from_edges(3, vec![(0, 1), (0, 1), (1, 2)]);
        let g = CsrGraph::from_edge_list(&edges);
        assert_eq!(g.num_edges(), 3);
        let d = delta_of(g);
        let (v2, out) = d.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
        assert_eq!(out.edges_removed, 1);
        assert!(v2.has_edge(0, 1), "one duplicate remains");
        let (v3, _) = v2.apply(&EdgeBatch::new().delete(0, 1)).unwrap();
        assert!(!v3.has_edge(0, 1));
        // Inserting onto a still-present duplicate is a no-op.
        let (v4, out) = v2.apply(&EdgeBatch::new().insert(0, 1)).unwrap();
        assert_eq!(out.edges_added, 0);
        assert_eq!(v4.num_edges(), v2.num_edges());
    }
}
