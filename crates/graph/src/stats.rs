//! Graph statistics and workload characterization.
//!
//! The paper's performance story is topology-driven: "the running time
//! of our new approach is dependent on the topology" (§3), diameter
//! decides whether work stealing can balance load (Palmer's theorem
//! that almost all random graphs have diameter two is the paper's
//! argument), and degree structure decides how much the degree-2
//! preprocessing helps. This module measures those properties so the
//! benchmark harness can report *why* an input behaves the way it does.

use std::collections::VecDeque;

use crate::repr::{CsrGraph, VertexId};
use crate::validate::component_labels;

/// Single-source BFS distances (`u32::MAX` for unreachable vertices).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `source` within its component (max finite BFS
/// distance).
pub fn eccentricity(g: &CsrGraph, source: VertexId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter of `start`'s component by the standard
/// double-sweep heuristic: BFS from `start`, then BFS from the farthest
/// vertex found. Exact on trees; a strong lower bound in general.
pub fn double_sweep_diameter(g: &CsrGraph, start: VertexId) -> u32 {
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    eccentricity(g, far)
}

/// Histogram of vertex degrees: `histogram[d]` = number of vertices of
/// degree d (length = max degree + 1; empty for the empty graph).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut h: Vec<usize> = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        if d >= h.len() {
            h.resize(d + 1, 0);
        }
        h[d] += 1;
    }
    h
}

/// Full characterization of a workload graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphProfile {
    /// Vertices.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// Connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Double-sweep diameter lower bound of the largest component.
    pub diameter_lb: u32,
    /// Mean degree 2m/n.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Fraction of vertices with degree 2 (the preprocessing target).
    pub degree2_fraction: f64,
    /// Fraction of isolated vertices.
    pub isolated_fraction: f64,
}

/// Computes a [`GraphProfile`].
pub fn profile(g: &CsrGraph) -> GraphProfile {
    let n = g.num_vertices();
    let m = g.num_edges();
    if n == 0 {
        return GraphProfile {
            n,
            m,
            components: 0,
            largest_component: 0,
            diameter_lb: 0,
            mean_degree: 0.0,
            max_degree: 0,
            degree2_fraction: 0.0,
            isolated_fraction: 0.0,
        };
    }
    let labels = component_labels(g);
    let num_components = labels.iter().copied().max().map_or(0, |x| x as usize + 1);
    let mut sizes = vec![0usize; num_components];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let (largest_label, &largest_component) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .unwrap_or((0, &0));
    // A representative vertex of the largest component.
    let rep = labels
        .iter()
        .position(|&l| l as usize == largest_label)
        .unwrap_or(0) as VertexId;
    let ds = g.degree_stats();
    GraphProfile {
        n,
        m,
        components: num_components,
        largest_component,
        diameter_lb: double_sweep_diameter(g, rep),
        mean_degree: ds.mean,
        max_degree: ds.max,
        degree2_fraction: ds.degree_two as f64 / n as f64,
        isolated_fraction: ds.isolated as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, complete, cycle, random_gnm, star, torus2d};

    #[test]
    fn bfs_distances_on_chain() {
        let g = chain(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn distances_mark_unreachable() {
        let g = random_gnm(10, 0, 0);
        let d = bfs_distances(&g, 3);
        assert_eq!(d[3], 0);
        assert!(d.iter().enumerate().all(|(v, &x)| v == 3 || x == u32::MAX));
    }

    #[test]
    fn eccentricity_and_diameter() {
        assert_eq!(eccentricity(&chain(10), 0), 9);
        assert_eq!(eccentricity(&chain(10), 5), 5);
        assert_eq!(double_sweep_diameter(&chain(10), 5), 9);
        assert_eq!(double_sweep_diameter(&cycle(8), 0), 4);
        assert_eq!(double_sweep_diameter(&complete(6), 2), 1);
    }

    #[test]
    fn torus_diameter() {
        // 6x6 torus: diameter = 3 + 3 = 6.
        assert_eq!(double_sweep_diameter(&torus2d(6, 6), 0), 6);
    }

    #[test]
    fn histogram_shapes() {
        let h = degree_histogram(&star(5));
        // Four leaves of degree 1, one hub of degree 4.
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
        assert!(degree_histogram(&CsrGraph::empty(0)).is_empty());
        assert_eq!(degree_histogram(&CsrGraph::empty(3)), vec![3]);
    }

    #[test]
    fn profile_of_random_graph() {
        let g = random_gnm(500, 400, 3);
        let p = profile(&g);
        assert_eq!(p.n, 500);
        assert_eq!(p.m, 400);
        assert!(p.components > 1);
        assert!(p.largest_component <= 500);
        assert!((p.mean_degree - 1.6).abs() < 1e-9);
        assert!(p.isolated_fraction > 0.0);
    }

    #[test]
    fn profile_of_chain_sees_high_diameter_and_degree2() {
        let p = profile(&chain(100));
        assert_eq!(p.components, 1);
        assert_eq!(p.diameter_lb, 99);
        assert!((p.degree2_fraction - 0.98).abs() < 1e-9);
    }

    #[test]
    fn profile_of_empty_graph() {
        let p = profile(&CsrGraph::empty(0));
        assert_eq!(p.n, 0);
        assert_eq!(p.components, 0);
    }

    #[test]
    fn paper_claim_random_graphs_have_tiny_diameter() {
        // Palmer's theorem (§3): almost all random graphs have diameter
        // two — at sufficient density. Check a dense-ish G(n, m).
        let g = random_gnm(400, 12_000, 1);
        let p = profile(&g);
        assert_eq!(p.components, 1);
        assert!(p.diameter_lb <= 3, "diameter_lb = {}", p.diameter_lb);
    }
}
