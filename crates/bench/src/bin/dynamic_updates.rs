//! The `dynamic-updates` benchmark: incremental forest maintenance vs
//! full recompute-per-batch on the service's batch-update path.
//!
//! ```text
//! dynamic_updates [--scale L] [--seed S] [--batches K] [--teams W,W,..]
//!                 [--sizes B,B,..] [--out FILE]
//! ```
//!
//! One `random_gnm(n = 2^L, m = 1.5 n)` graph is registered in a
//! service catalog, then mutated by `K` batches of each size `B`, twice
//! over:
//!
//! * `incremental` — the service is built with a recompute fraction
//!   above 1, so [`Service::apply`] always repairs the maintained
//!   forest in place (CAS-hook unions for inserts, replacement-edge
//!   search for deletes);
//! * `recompute` — the recompute fraction is 0, so every batch falls
//!   back to rerunning the static spanning-tree algorithm over the
//!   post-batch snapshot.
//!
//! Both modes replay the *same* deterministic batch stream (three
//! random insertions to one deletion of a previously inserted edge),
//! and each mode's final component count is checked against a
//! sequential BFS oracle over the materialized final graph. The report
//! (default `BENCH_dynamic.json`) records per-size mean batch latency
//! for both modes, their speedup, and the *crossover batch size*: the
//! smallest `B` where incremental maintenance stops beating recompute
//! (`null` when incremental wins at every measured size).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use st_graph::gen::random_gnm;
use st_graph::{CsrGraph, EdgeBatch, VertexId};
use st_service::Service;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: dynamic_updates [--scale L] [--seed S] [--batches K] [--teams W,W,..] \
         [--sizes B,B,..] [--out FILE]"
    );
    std::process::exit(2)
}

struct Opts {
    scale: u32,
    seed: u64,
    batches: usize,
    teams: Vec<usize>,
    sizes: Vec<usize>,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: 16,
        seed: 42,
        batches: 8,
        teams: vec![4, 2, 2],
        sizes: vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536],
        out: PathBuf::from("BENCH_dynamic.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--batches" => {
                opts.batches = need("--batches needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--batches must be an integer"))
            }
            "--teams" => {
                opts.teams = need("--teams needs a value")
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--teams must be a comma list of widths"))
                    })
                    .collect()
            }
            "--sizes" => {
                opts.sizes = need("--sizes needs a value")
                    .split(',')
                    .map(|b| {
                        b.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--sizes must be a comma list of sizes"))
                    })
                    .collect()
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

/// xorshift64*: deterministic, dependency-free stream for the batches.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn vertex(&mut self, n: usize) -> VertexId {
        (self.next() % n as u64) as VertexId
    }
}

/// The deterministic batch stream both modes replay: three random
/// insertions to one deletion of an edge a previous batch inserted.
fn batch_stream(n: usize, batches: usize, size: usize, seed: u64) -> Vec<EdgeBatch> {
    let mut rng = Rng(seed | 1);
    let mut inserted: Vec<(VertexId, VertexId)> = Vec::new();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = EdgeBatch::new();
        for op in 0..size {
            if op % 4 == 3 && !inserted.is_empty() {
                let i = (rng.next() % inserted.len() as u64) as usize;
                let (u, v) = inserted.swap_remove(i);
                batch = batch.delete(u, v);
            } else {
                let (u, v) = (rng.vertex(n), rng.vertex(n));
                if u != v {
                    inserted.push((u, v));
                    batch = batch.insert(u, v);
                }
            }
        }
        out.push(batch);
    }
    out
}

/// Applies `stream` to a fresh service in the given maintenance mode,
/// returning per-batch latencies (seconds) and the final component
/// count the maintainer reports.
fn run_mode(
    base: &Arc<CsrGraph>,
    teams: &[usize],
    recompute_fraction: f64,
    stream: &[EdgeBatch],
) -> (Vec<f64>, usize, u64) {
    let svc = Service::builder()
        .teams(teams.iter().copied())
        .dyn_recompute_fraction(recompute_fraction)
        .build();
    let gref = svc.catalog().register(Arc::clone(base));
    let mut lats = Vec::with_capacity(stream.len());
    let mut components = 0;
    let mut incremental_batches = 0u64;
    for batch in stream {
        let t0 = Instant::now();
        let report = svc.apply(gref.id, batch).expect("batch applies");
        lats.push(t0.elapsed().as_secs_f64());
        components = report.components;
        incremental_batches += u64::from(report.incremental);
    }
    // Oracle: a sequential BFS over the materialized final graph must
    // see the same component count the maintainer reports.
    let (final_graph, _) = svc
        .catalog()
        .resolve_latest(gref.id)
        .expect("graph still registered");
    let oracle = st_graph::validate::count_components(&final_graph);
    assert_eq!(
        components, oracle,
        "maintained component count diverged from the BFS oracle"
    );
    svc.shutdown();
    (lats, components, incremental_batches)
}

#[derive(Clone, Debug, Serialize)]
struct SizeResult {
    batch_size: usize,
    incremental_mean_ms: f64,
    recompute_mean_ms: f64,
    /// recompute / incremental: above 1 means incremental wins.
    speedup: f64,
    components: usize,
}

#[derive(Clone, Debug, Serialize)]
struct DynamicReport {
    benchmark: String,
    workload: String,
    n: usize,
    m: usize,
    teams: Vec<usize>,
    batches_per_size: usize,
    host_parallelism: usize,
    sizes: Vec<SizeResult>,
    /// Smallest measured batch size where incremental maintenance is no
    /// longer faster than recompute-per-batch; `null` when incremental
    /// won at every measured size.
    crossover_batch: Option<usize>,
}

fn mean_ms(lats: &[f64]) -> f64 {
    if lats.is_empty() {
        return 0.0;
    }
    lats.iter().sum::<f64>() / lats.len() as f64 * 1e3
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = n + n / 2;
    let base = Arc::new(random_gnm(n, m, opts.seed));
    eprintln!(
        "dynamic-updates: n = {n}, m = {m}, teams {:?}, {} batches per size",
        opts.teams, opts.batches
    );

    let mut sizes = Vec::with_capacity(opts.sizes.len());
    for &size in &opts.sizes {
        let stream = batch_stream(n, opts.batches, size, opts.seed ^ size as u64);
        // recompute_fraction above 1: the touched estimate can never
        // reach it, so every batch takes the incremental path.
        let (inc_lats, inc_components, inc_count) = run_mode(&base, &opts.teams, 2.0, &stream);
        assert_eq!(
            inc_count,
            stream.len() as u64,
            "incremental mode fell back to recompute"
        );
        // recompute_fraction 0: every batch recomputes from scratch.
        let (rec_lats, rec_components, rec_count) = run_mode(&base, &opts.teams, 0.0, &stream);
        assert_eq!(rec_count, 0, "recompute mode took the incremental path");
        assert_eq!(
            inc_components, rec_components,
            "modes disagreed on the final component count"
        );
        let result = SizeResult {
            batch_size: size,
            incremental_mean_ms: mean_ms(&inc_lats),
            recompute_mean_ms: mean_ms(&rec_lats),
            speedup: mean_ms(&rec_lats) / mean_ms(&inc_lats).max(1e-9),
            components: inc_components,
        };
        eprintln!(
            "  B = {:>6}: incremental {:.3} ms, recompute {:.3} ms, speedup {:.2}x",
            size, result.incremental_mean_ms, result.recompute_mean_ms, result.speedup
        );
        sizes.push(result);
    }

    let crossover_batch = sizes
        .iter()
        .find(|s| s.speedup <= 1.0)
        .map(|s| s.batch_size);
    let report = DynamicReport {
        benchmark: "dynamic-updates".into(),
        workload: format!("random_gnm(2^{}, 1.5n) + mixed batches", opts.scale),
        n,
        m,
        teams: opts.teams.clone(),
        batches_per_size: opts.batches,
        host_parallelism: std::thread::available_parallelism().map_or(1, |c| c.get()),
        sizes,
        crossover_batch,
    };
    match crossover_batch {
        Some(b) => eprintln!("crossover: incremental stops winning at B = {b}"),
        None => eprintln!("crossover: none — incremental won at every measured size"),
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, json).expect("writing the report");
    eprintln!("wrote {}", opts.out.display());
}
