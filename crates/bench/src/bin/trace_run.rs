//! `trace-run`: run one spanning-forest job and export its phase trace
//! as a Chrome trace-event file (loadable in Perfetto / `chrome://tracing`).
//!
//! ```text
//! trace_run [--algo A] [--scale L] [--p P] [--seed S] [--out FILE]
//! ```
//!
//! `A` is one of `bader-cong` (default), `sv-election`, `sv-lock`,
//! `hcs`, `multiroot`. The input is `random_connected(n = 2^L, m = 4n)`.
//!
//! The counters in the emitted `job_totals` instant event are always
//! populated; the per-phase "X" spans need the `obs-trace` feature
//! (`cargo run --features obs-trace --bin trace_run`). Without it the
//! file is still valid, just span-free, and a note is printed.

use std::path::PathBuf;

use st_core::bader_cong::BaderCong;
use st_core::engine::Engine;
use st_core::hcs::Hcs;
use st_core::multiroot::Multiroot;
use st_core::result::SpanningForest;
use st_core::sv::{GraftVariant, Sv, SvConfig};
use st_graph::gen::random_connected;
use st_obs::{write_chrome_trace, TraceSet};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: trace_run [--algo bader-cong|sv-election|sv-lock|hcs|multiroot] \
         [--scale L] [--p P] [--seed S] [--out FILE]"
    );
    std::process::exit(2)
}

struct Opts {
    algo: String,
    scale: u32,
    p: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        algo: "bader-cong".to_owned(),
        scale: 16,
        p: 4,
        seed: 42,
        out: PathBuf::from("trace.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--algo" => opts.algo = need("--algo needs a value"),
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--p" => {
                opts.p = need("--p needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--p must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

fn run(engine: &mut Engine, algo: &str, g: &st_graph::CsrGraph) -> SpanningForest {
    match algo {
        "bader-cong" => engine.run(&BaderCong::with_defaults(), g),
        "sv-election" => engine.run(
            &Sv::new(SvConfig {
                variant: GraftVariant::Election,
                ..SvConfig::default()
            }),
            g,
        ),
        "sv-lock" => engine.run(
            &Sv::new(SvConfig {
                variant: GraftVariant::Lock,
                ..SvConfig::default()
            }),
            g,
        ),
        "hcs" => engine.run(&Hcs, g),
        "multiroot" => engine.run(&Multiroot::with_defaults(), g),
        other => usage(&format!("unknown algorithm {other}")),
    }
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = 4 * n;
    eprintln!(
        "trace-run: {} on random_connected(n = {n}, m = {m}), p = {}",
        opts.algo, opts.p
    );
    let g = random_connected(n, m, opts.seed);
    let mut engine = Engine::new(opts.p);
    let forest = run(&mut engine, &opts.algo, &g);
    let metrics = &forest.stats.metrics;

    eprintln!(
        "  {} trees, wall {:.3}s, {} spans recorded ({} dropped)",
        forest.num_trees(),
        metrics.wall_ns as f64 / 1e9,
        metrics.spans.len(),
        metrics.spans_dropped
    );
    for pt in metrics.phase_totals() {
        eprintln!(
            "  phase {:<9} count {:<6} total {:.3}s",
            pt.phase.name(),
            pt.count,
            pt.total_ns as f64 / 1e9
        );
    }
    if !TraceSet::enabled() {
        eprintln!("  note: built without the obs-trace feature; the trace has no spans");
    }

    let file = std::fs::File::create(&opts.out).expect("create trace file");
    let mut w = std::io::BufWriter::new(file);
    write_chrome_trace(metrics, &mut w).expect("write trace");
    std::io::Write::flush(&mut w).expect("flush trace");
    eprintln!(
        "wrote {} — open in https://ui.perfetto.dev or chrome://tracing",
        opts.out.display()
    );
}
