//! The `service-throughput` benchmark: multi-tenant job throughput of
//! the `st-service` pool vs the naive spawn-a-team-per-job pattern.
//!
//! ```text
//! service_throughput [--clients C] [--jobs J] [--scale L] [--seed S]
//!                    [--teams W,W,..] [--queue-cap Q] [--out FILE]
//! ```
//!
//! `C` client threads each submit `J` spanning-forest jobs over a shared
//! `random_gnm(n = 2^L, m = 1.5 n)` graph and wait for every result,
//! under two execution models:
//!
//! * `naive` — what callers wrote before the service existed: each job
//!   calls the (now deprecated) one-shot entry point, which spawns a
//!   fresh team of width `max(teams)`, runs, and tears it down. With
//!   `C` clients this oversubscribes the machine with `C × p` transient
//!   threads and pays the spawn/join tax on every job.
//! * `service` — one [`Service`](st_service::Service) with the given
//!   team layout and admission-queue capacity; clients submit through
//!   the job builder and block in `wait()`.
//! * `server_cold` — the same service behind the TCP front-end: `C`
//!   loopback [`Client`](st_service::net::Client) connections submit
//!   catalog-addressed jobs with per-job distinct seeds, so every job
//!   misses the result cache and executes. Measures the full wire path
//!   (framing + admission + execution + forest download).
//! * `server_hot` — identical, but every client reuses one seed, so
//!   after the first execution the result cache short-circuits every
//!   job: no queue entry, no team lease. The report asserts the hit
//!   count proves it.
//!
//! Every forest is validated for tree count; per-job latencies
//! (submit → result) give p50/p99. The report (default
//! `BENCH_service.json`) records all models, their jobs/s, and the
//! in-process speedup, plus each service's final [`PoolSnapshot`]
//! gauges.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use st_core::bader_cong::BaderCong;
use st_graph::gen::random_gnm;
use st_graph::CsrGraph;
use st_obs::PoolSnapshot;
use st_service::net::{Client, RemoteGraph, Server, ServerConfig, SubmitRequest};
use st_service::Service;

#[derive(Clone, Debug, Serialize)]
struct ModelResult {
    model: String,
    wall_s: f64,
    jobs_per_s: f64,
    /// Client-side stopwatch percentiles (submit → result claimed).
    p50_ms: f64,
    p99_ms: f64,
    /// Server-side percentiles from the service's own latency
    /// histograms (queue + exec wall for executed jobs, cached-path
    /// wall for the hot model); `None` for the serviceless naive model.
    /// The client/server gap is the wire + framing overhead.
    server_p50_ms: Option<f64>,
    server_p99_ms: Option<f64>,
    pool: Option<PoolSnapshot>,
}

#[derive(Clone, Debug, Serialize)]
struct ServiceReport {
    benchmark: String,
    workload: String,
    n: usize,
    m: usize,
    clients: usize,
    jobs_per_client: usize,
    total_jobs: usize,
    teams: Vec<usize>,
    queue_capacity: usize,
    naive_p: usize,
    host_parallelism: usize,
    naive: ModelResult,
    service: ModelResult,
    server_cold: ModelResult,
    server_hot: ModelResult,
    speedup: f64,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: service_throughput [--clients C] [--jobs J] [--scale L] [--seed S] \
         [--teams W,W,..] [--queue-cap Q] [--out FILE]"
    );
    std::process::exit(2)
}

struct Opts {
    clients: usize,
    jobs: usize,
    scale: u32,
    seed: u64,
    teams: Vec<usize>,
    queue_cap: usize,
    out: PathBuf,
}

fn parse_args() -> Opts {
    // Defaults model the service's target regime: many small jobs from
    // many tenants, where the per-job team-spawn tax dominates and a
    // shared pool pays off most. Large single jobs belong to the
    // traversal benchmarks instead.
    let mut opts = Opts {
        clients: 8,
        jobs: 100,
        scale: 9,
        seed: 42,
        teams: vec![4, 2, 2],
        queue_cap: 64,
        out: PathBuf::from("BENCH_service.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--clients" => {
                opts.clients = need("--clients needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--clients must be an integer"))
            }
            "--jobs" => {
                opts.jobs = need("--jobs needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--jobs must be an integer"))
            }
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--teams" => {
                opts.teams = need("--teams needs a value")
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--teams must be a comma list of widths"))
                    })
                    .collect()
            }
            "--queue-cap" => {
                opts.queue_cap = need("--queue-cap needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--queue-cap must be an integer"))
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

/// Latency percentile in milliseconds; `q` in [0, 1].
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_s.len() - 1) as f64 * q).round() as usize;
    sorted_s[idx] * 1e3
}

/// Runs `clients × jobs` jobs through `run_job`, which returns the
/// number of trees in the forest it computed. Returns (wall seconds,
/// sorted per-job latencies in seconds).
fn drive<F>(clients: usize, jobs: usize, expected_trees: usize, run_job: F) -> (f64, Vec<f64>)
where
    F: Fn() -> usize + Sync,
{
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let run_job = &run_job;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(jobs);
                    for _ in 0..jobs {
                        let t0 = Instant::now();
                        let trees = run_job();
                        lats.push(t0.elapsed().as_secs_f64());
                        assert_eq!(trees, expected_trees, "wrong forest");
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (wall, latencies)
}

/// One remote job: submit with `seed`, wait, return the tree count.
fn remote_trees(conn: &mut Client, remote: RemoteGraph, seed: u64) -> usize {
    let reply = conn
        .submit(SubmitRequest::new(remote).seed(seed))
        .expect("remote submit");
    conn.wait(reply.ticket).expect("remote wait").num_trees()
}

/// As [`drive`], but each client thread owns one TCP connection to
/// `addr`. `run_job` receives `(connection, client index, job index)`.
fn drive_server<F>(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs: usize,
    expected_trees: usize,
    run_job: F,
) -> (f64, Vec<f64>)
where
    F: Fn(&mut Client, usize, usize) -> usize + Sync,
{
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let run_job = &run_job;
                s.spawn(move || {
                    let mut conn = Client::connect(addr).expect("loopback connect");
                    let mut lats = Vec::with_capacity(jobs);
                    for job in 0..jobs {
                        let t0 = Instant::now();
                        let trees = run_job(&mut conn, client, job);
                        lats.push(t0.elapsed().as_secs_f64());
                        assert_eq!(trees, expected_trees, "wrong forest");
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (wall, latencies)
}

fn model_result(
    model: &str,
    total_jobs: usize,
    wall_s: f64,
    latencies: &[f64],
    server_quantiles_ns: Option<(u64, u64)>,
    pool: Option<PoolSnapshot>,
) -> ModelResult {
    let r = ModelResult {
        model: model.to_owned(),
        wall_s,
        jobs_per_s: total_jobs as f64 / wall_s,
        p50_ms: percentile_ms(latencies, 0.50),
        p99_ms: percentile_ms(latencies, 0.99),
        server_p50_ms: server_quantiles_ns.map(|(p50, _)| p50 as f64 / 1e6),
        server_p99_ms: server_quantiles_ns.map(|(_, p99)| p99 as f64 / 1e6),
        pool,
    };
    match (r.server_p50_ms, r.server_p99_ms) {
        (Some(sp50), Some(sp99)) => eprintln!(
            "  {model:<8} {:.1} jobs/s  (wall {:.3}s, client p50 {:.2}ms / p99 {:.2}ms, \
             server p50 {sp50:.2}ms / p99 {sp99:.2}ms)",
            r.jobs_per_s, r.wall_s, r.p50_ms, r.p99_ms
        ),
        _ => eprintln!(
            "  {model:<8} {:.1} jobs/s  (wall {:.3}s, p50 {:.2}ms, p99 {:.2}ms)",
            r.jobs_per_s, r.wall_s, r.p50_ms, r.p99_ms
        ),
    }
    r
}

/// p50/p99 (ns) of the service's cached-path wall histogram — the
/// server-side counterpart of the hot model's client stopwatch.
fn cached_quantiles_ns(svc: &Service) -> (u64, u64) {
    let families = svc.telemetry().histogram_families();
    let snap = families
        .iter()
        .find(|f| f.name == "st_service_cached_wall_seconds")
        .and_then(|f| f.series.first())
        .map(|s| s.snapshot.clone())
        .expect("cached-wall family is always exported");
    (snap.quantile(0.50), snap.quantile(0.99))
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = 3 * n / 2;
    let naive_p = opts.teams.iter().copied().max().unwrap_or(1);
    let total_jobs = opts.clients * opts.jobs;
    eprintln!(
        "service-throughput: random_gnm(n = {n}, m = {m}), {} clients x {} jobs, \
         teams {:?}, queue cap {}",
        opts.clients, opts.jobs, opts.teams, opts.queue_cap
    );
    let g: Arc<CsrGraph> = Arc::new(random_gnm(n, m, opts.seed));
    // The forest's tree count is a seed-determined constant; compute it
    // once sequentially so every timed job can be validated in O(1).
    let expected_trees = st_core::seq::bfs_forest(&g).num_trees();

    // Naive model: a fresh team per job, the pre-service calling
    // convention this benchmark exists to retire.
    let (naive_wall, naive_lats) = drive(opts.clients, opts.jobs, expected_trees, || {
        let algo = BaderCong::with_defaults();
        #[allow(deprecated)] // the baseline IS the deprecated pattern
        let forest = algo.spanning_forest(&g, naive_p);
        forest.num_trees()
    });
    let naive = model_result("naive", total_jobs, naive_wall, &naive_lats, None, None);

    // Service model: one shared pool behind admission control.
    let svc = Service::builder()
        .teams(opts.teams.iter().copied())
        .queue_capacity(opts.queue_cap)
        .build();
    let (svc_wall, svc_lats) = drive(opts.clients, opts.jobs, expected_trees, || {
        let handle = svc.job(&g).submit().expect("service is open");
        handle.wait().expect("no deadline, no cancel").num_trees()
    });
    // Server-side wall quantiles must be read before shutdown consumes
    // the service.
    let svc_quantiles = svc.telemetry().wall_quantiles();
    let snapshot = svc.shutdown();
    let service = model_result(
        "service",
        total_jobs,
        svc_wall,
        &svc_lats,
        Some(svc_quantiles),
        Some(snapshot),
    );

    // Server models: the same pool behind the TCP front-end, driven by
    // `clients` concurrent loopback connections.
    let (server_cold, server_hot) = {
        let svc = Arc::new(
            Service::builder()
                .teams(opts.teams.iter().copied())
                .queue_capacity(opts.queue_cap)
                .result_cache_capacity(opts.clients * opts.jobs + 1)
                .build(),
        );
        let server = Server::start(Arc::clone(&svc), ServerConfig::default())
            .expect("binding a loopback port");
        let remote = Client::connect(server.local_addr())
            .expect("connect")
            .register(&g)
            .expect("register");

        // Cold: per-client, per-job unique seeds — every job misses the
        // cache and runs a real traversal over the wire path.
        let (cold_wall, cold_lats) = drive_server(
            server.local_addr(),
            opts.clients,
            opts.jobs,
            expected_trees,
            |conn, client, job| remote_trees(conn, remote, 1 + (client * opts.jobs + job) as u64),
        );
        let cold_snapshot = svc.snapshot();
        assert_eq!(
            cold_snapshot.cache_hits, 0,
            "cold pass must never hit the cache"
        );
        let server_cold = model_result(
            "server_cold",
            total_jobs,
            cold_wall,
            &cold_lats,
            Some(svc.telemetry().wall_quantiles()),
            Some(cold_snapshot),
        );

        // Hot: one shared seed — after at most a few racing cold runs,
        // every job is a cache hit that bypasses queue and pool.
        let (hot_wall, hot_lats) = drive_server(
            server.local_addr(),
            opts.clients,
            opts.jobs,
            expected_trees,
            |conn, _, _| remote_trees(conn, remote, 0),
        );
        let hot_snapshot = svc.snapshot();
        let hot_hits = hot_snapshot.cache_hits - cold_snapshot.cache_hits;
        assert!(
            hot_hits >= (total_jobs as u64).saturating_sub(opts.clients as u64),
            "hot pass must be cache-served (got {hot_hits} hits of {total_jobs} jobs)"
        );
        eprintln!("  server_hot cache hits: {hot_hits}/{total_jobs}");
        // The hot pass is cache-served, so its server-side view is the
        // cached-path wall histogram, not the execution histograms.
        let server_hot = model_result(
            "server_hot",
            total_jobs,
            hot_wall,
            &hot_lats,
            Some(cached_quantiles_ns(&svc)),
            Some(hot_snapshot),
        );
        server.shutdown();
        (server_cold, server_hot)
    };

    let speedup = service.jobs_per_s / naive.jobs_per_s;
    eprintln!("  speedup: {speedup:.2}x");

    let report = ServiceReport {
        benchmark: "service-throughput".to_owned(),
        workload: format!("random_gnm({n}, {m})"),
        n: g.num_vertices(),
        m: g.num_edges(),
        clients: opts.clients,
        jobs_per_client: opts.jobs,
        total_jobs,
        teams: opts.teams.clone(),
        queue_capacity: opts.queue_cap,
        naive_p,
        host_parallelism: std::thread::available_parallelism().map_or(1, |c| c.get()),
        naive,
        service,
        server_cold,
        server_hot,
        speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    eprintln!("wrote {}", opts.out.display());
}
