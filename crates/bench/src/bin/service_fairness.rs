//! The `service-fairness` benchmark: an adversarial mixed-tenant load
//! against the weighted-fair scheduler.
//!
//! ```text
//! service_fairness [--secs T] [--scale L] [--seed S] [--bulk B]
//!                  [--teams W,W,..] [--queue-cap Q] [--out FILE]
//! ```
//!
//! One chatty *interactive* tenant keeps a deep window of
//! high-priority jobs in flight for the whole run — the workload that
//! starved the bulk lane outright under strict-priority draining.
//! `B` *bulk* tenants each keep a small window of low-priority jobs in
//! flight over the same shared `random_gnm(n = 2^L, m = 1.5 n)` graph.
//! All jobs are identical, so dispatch share equals throughput share.
//!
//! Deficit round-robin entitles the high lane to
//! [`DEFAULT_LANE_WEIGHTS`]`[0]` dispatches per round and the bulk
//! lane to `DEFAULT_LANE_WEIGHTS[2]`, split FIFO across the bulk
//! tenants. Fairness is therefore judged on *weight-normalized*
//! throughput `y_i = rate_i / entitlement_i` (ideal DRR makes every
//! `y_i` equal) via Jain's index
//!
//! ```text
//! J = (Σ y_i)² / (n · Σ y_i²)      ∈ (1/n, 1], 1 = perfectly fair
//! ```
//!
//! The run fails if `J < 0.8` or any tenant finished zero jobs — the
//! regression this benchmark exists to catch is the bulk lane starving
//! while the interactive lane is saturated. The report lands in the
//! `fairness` section of `BENCH_service.json` (merged into the
//! existing file when present) with per-tenant jobs/s and p50/p99.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use st_graph::gen::random_gnm;
use st_graph::CsrGraph;
use st_obs::PoolSnapshot;
use st_service::service::DEFAULT_LANE_WEIGHTS;
use st_service::{Priority, Service};

#[derive(Clone, Debug, Serialize)]
struct TenantResult {
    tenant: u64,
    lane: String,
    window: usize,
    completed: usize,
    jobs_per_s: f64,
    /// This tenant's share of the DRR dispatch entitlement.
    entitlement: f64,
    /// `jobs_per_s / entitlement` — equal across tenants under ideal
    /// weighted-fair dispatch.
    normalized_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Clone, Debug, Serialize)]
struct FairnessReport {
    benchmark: String,
    workload: String,
    n: usize,
    m: usize,
    run_secs: f64,
    teams: Vec<usize>,
    queue_capacity: usize,
    lane_weights: Vec<u32>,
    host_parallelism: usize,
    tenants: Vec<TenantResult>,
    /// Jain's index over weight-normalized per-tenant throughput.
    jains_index: f64,
    pool: PoolSnapshot,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: service_fairness [--secs T] [--scale L] [--seed S] [--bulk B] \
         [--teams W,W,..] [--queue-cap Q] [--out FILE]"
    );
    std::process::exit(2)
}

struct Opts {
    secs: f64,
    scale: u32,
    seed: u64,
    bulk: usize,
    teams: Vec<usize>,
    queue_cap: usize,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        secs: 3.0,
        scale: 9,
        seed: 42,
        bulk: 4,
        teams: vec![4, 2, 2],
        queue_cap: 64,
        out: PathBuf::from("BENCH_service.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--secs" => {
                opts.secs = need("--secs needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--secs must be a number"))
            }
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--bulk" => {
                opts.bulk = need("--bulk needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--bulk must be an integer"))
            }
            "--teams" => {
                opts.teams = need("--teams needs a value")
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--teams must be a comma list of widths"))
                    })
                    .collect()
            }
            "--queue-cap" => {
                opts.queue_cap = need("--queue-cap needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--queue-cap must be an integer"))
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            other => usage(&format!("unknown option {other}")),
        }
    }
    if opts.bulk == 0 {
        usage("--bulk must be at least 1");
    }
    opts
}

/// Latency percentile in milliseconds; `q` in [0, 1].
fn percentile_ms(sorted_s: &[f64], q: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_s.len() - 1) as f64 * q).round() as usize;
    sorted_s[idx] * 1e3
}

/// Jain's fairness index over the given allocations.
fn jains_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (n * sq)
}

/// One tenant's closed-loop window: keep `window` jobs in flight until
/// `until`, then drain. Returns (completed count, elapsed seconds from
/// start to last completion, sorted submit→result latencies).
fn tenant_loop(
    svc: &Service,
    g: &Arc<CsrGraph>,
    tenant: u64,
    prio: Priority,
    window: usize,
    until: Instant,
    expected_trees: usize,
) -> (usize, f64, Vec<f64>) {
    let started = Instant::now();
    let mut inflight = VecDeque::with_capacity(window);
    let mut lats = Vec::new();
    loop {
        while inflight.len() < window && Instant::now() < until {
            let t0 = Instant::now();
            let handle = svc
                .job(g)
                .priority(prio)
                .tenant(tenant)
                .submit()
                .expect("service is open");
            inflight.push_back((t0, handle));
        }
        let Some((t0, handle)) = inflight.pop_front() else {
            break;
        };
        let forest = handle.wait().expect("no deadline, no cancel");
        assert_eq!(forest.num_trees(), expected_trees, "wrong forest");
        lats.push(t0.elapsed().as_secs_f64());
    }
    let elapsed = started.elapsed().as_secs_f64();
    lats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (lats.len(), elapsed, lats)
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = 3 * n / 2;
    // The interactive tenant's window is sized to keep the high lane
    // saturated for the whole run while leaving queue headroom, so the
    // bulk tenants' trickle is never blocked at the submit door — the
    // contest happens inside the scheduler, where it belongs.
    let interactive_window = (opts.queue_cap / 2).max(8);
    let bulk_window = 2;
    eprintln!(
        "service-fairness: random_gnm(n = {n}, m = {m}), 1 interactive (high, window \
         {interactive_window}) vs {} bulk tenants (low, window {bulk_window}), {:.1}s, \
         teams {:?}, queue cap {}",
        opts.bulk, opts.secs, opts.teams, opts.queue_cap
    );
    let g: Arc<CsrGraph> = Arc::new(random_gnm(n, m, opts.seed));
    let expected_trees = st_core::seq::bfs_forest(&g).num_trees();

    let svc = Service::builder()
        .teams(opts.teams.iter().copied())
        .queue_capacity(opts.queue_cap)
        .build();
    let until = Instant::now() + Duration::from_secs_f64(opts.secs);

    // (tenant id, lane, window, entitlement). The high lane's DRR
    // weight belongs to the one interactive tenant; the low lane's is
    // split FIFO across the bulk tenants.
    let w_high = f64::from(DEFAULT_LANE_WEIGHTS[0]);
    let w_low = f64::from(DEFAULT_LANE_WEIGHTS[2]);
    let mut plan = vec![(1u64, Priority::High, interactive_window, w_high)];
    for b in 0..opts.bulk {
        plan.push((
            10 + b as u64,
            Priority::Low,
            bulk_window,
            w_low / opts.bulk as f64,
        ));
    }

    struct TenantRun {
        tenant: u64,
        prio: Priority,
        window: usize,
        entitlement: f64,
        completed: usize,
        elapsed_s: f64,
        lats: Vec<f64>,
    }
    let per_tenant: Vec<TenantRun> = std::thread::scope(|s| {
        let handles: Vec<_> = plan
            .iter()
            .map(|&(tenant, prio, window, entitlement)| {
                let (svc, g) = (&svc, &g);
                s.spawn(move || {
                    let (completed, elapsed_s, lats) =
                        tenant_loop(svc, g, tenant, prio, window, until, expected_trees);
                    TenantRun {
                        tenant,
                        prio,
                        window,
                        entitlement,
                        completed,
                        elapsed_s,
                        lats,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });
    let snapshot = svc.shutdown();

    let tenants: Vec<TenantResult> = per_tenant
        .iter()
        .map(|run| {
            let rate = run.completed as f64 / run.elapsed_s;
            let r = TenantResult {
                tenant: run.tenant,
                lane: format!("{:?}", run.prio).to_lowercase(),
                window: run.window,
                completed: run.completed,
                jobs_per_s: rate,
                entitlement: run.entitlement,
                normalized_rate: rate / run.entitlement,
                p50_ms: percentile_ms(&run.lats, 0.50),
                p99_ms: percentile_ms(&run.lats, 0.99),
            };
            eprintln!(
                "  tenant {:<3} {:<6} {:>5} jobs  {rate:>8.1} jobs/s  \
                 (p50 {:.2}ms, p99 {:.2}ms, normalized {:.1})",
                r.tenant, r.lane, r.completed, r.p50_ms, r.p99_ms, r.normalized_rate
            );
            r
        })
        .collect();

    let j = jains_index(
        &tenants
            .iter()
            .map(|t| t.normalized_rate)
            .collect::<Vec<_>>(),
    );
    eprintln!(
        "  Jain's index (weight-normalized): {j:.3}  \
         (dequeues high/normal/low: {}/{}/{})",
        snapshot.dequeued_high, snapshot.dequeued_normal, snapshot.dequeued_low
    );
    for t in &tenants {
        assert!(
            t.completed > 0,
            "tenant {} (lane {}) was starved outright",
            t.tenant,
            t.lane
        );
    }
    assert!(
        j >= 0.8,
        "Jain's fairness index {j:.3} below the 0.8 floor — the scheduler is \
         letting the saturated lane starve the others"
    );

    let report = FairnessReport {
        benchmark: "service-fairness".to_owned(),
        workload: format!("random_gnm({n}, {m})"),
        n: g.num_vertices(),
        m: g.num_edges(),
        run_secs: opts.secs,
        teams: opts.teams.clone(),
        queue_capacity: opts.queue_cap,
        lane_weights: DEFAULT_LANE_WEIGHTS.to_vec(),
        host_parallelism: std::thread::available_parallelism().map_or(1, |c| c.get()),
        tenants,
        jains_index: j,
        pool: snapshot,
    };

    // Merge into the throughput benchmark's report file when present,
    // so BENCH_service.json carries both views of the same service.
    let mut doc = match std::fs::read_to_string(&opts.out)
        .ok()
        .and_then(|s| serde_json::parse_value(&s).ok())
    {
        Some(serde_json::Value::Object(map)) => map,
        _ => std::collections::BTreeMap::new(),
    };
    doc.insert("fairness".to_owned(), report.to_value());
    let json =
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("serialize report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    eprintln!("wrote {}", opts.out.display());
}
