// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Regenerates every result figure and in-text claim of the paper.
//!
//! ```text
//! figures fig3        [--scale L] [--p P] [--mode model|wall|both] [--seed S] [--out DIR]
//! figures fig4        [--panel ID | --panel all] [--scale L] [--mode ...] [--out DIR]
//! figures races       [--scale L]                 # CLAIM-RACE
//! figures svlabel     [--scale L]                 # CLAIM-SVLABEL
//! figures lockvariant [--scale L]                 # CLAIM-LOCK
//! figures model       [--scale L]                 # MODEL (triplet table)
//! figures all         [--scale L] [--out DIR]
//! ```
//!
//! `--scale L` sets n ≈ 2^L (default 16 for model runs, 13 for wall
//! runs). Model mode uses the deterministic Helman–JáJá executor with
//! the E4500 profile (the figure-shape substitute documented in
//! DESIGN.md §4); wall mode runs the real threaded implementations.

use std::path::PathBuf;

use st_bench::report::{render_table, save_results};
use st_bench::runner::{run_cell, Algorithm, Mode, ResultRow};
use st_bench::workloads::Workload;
use st_core::bader_cong::BaderCong;
use st_core::sv::{self, GraftVariant, SvConfig};
use st_model::analytic;
use st_model::sim::{simulate_bader_cong, simulate_sv, TraversalSimConfig};
use st_model::MachineProfile;

#[derive(Clone, Debug)]
struct Opts {
    command: String,
    panel: String,
    scale: Option<u32>,
    p: usize,
    mode: String,
    seed: u64,
    out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage("missing command"));
    let mut opts = Opts {
        command,
        panel: "all".into(),
        scale: None,
        p: 8,
        mode: "model".into(),
        seed: 42,
        out: None,
    };
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--panel" => opts.panel = need("--panel needs a value"),
            "--scale" => {
                opts.scale = Some(
                    need("--scale needs a value")
                        .parse()
                        .unwrap_or_else(|_| usage("--scale must be an integer")),
                )
            }
            "--p" => {
                opts.p = need("--p needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--p must be an integer"))
            }
            "--mode" => opts.mode = need("--mode needs a value"),
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--out" => opts.out = Some(PathBuf::from(need("--out needs a value"))),
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: figures <fig3|fig4|races|svlabel|lockvariant|model|profile|mst|all> \
         [--panel ID] [--scale L] [--p P] [--mode model|wall|both] [--seed S] [--out DIR]"
    );
    std::process::exit(2)
}

fn modes(opts: &Opts) -> Vec<Mode> {
    match opts.mode.as_str() {
        "model" => vec![Mode::Model],
        "wall" => vec![Mode::Wall],
        "both" => vec![Mode::Model, Mode::Wall],
        other => usage(&format!("unknown mode {other}")),
    }
}

fn scale_n(opts: &Opts, mode: Mode) -> usize {
    let default = match mode {
        Mode::Model => 16,
        Mode::Wall => 13,
    };
    1usize << opts.scale.unwrap_or(default)
}

/// Processor counts swept in Fig. 4 (the paper's E4500 had 14).
const P_SWEEP: [usize; 5] = [1, 2, 4, 8, 12];

fn emit(opts: &Opts, name: &str, title: &str, rows: &[ResultRow]) {
    print!("{}", render_table(title, rows));
    println!();
    if let Some(dir) = &opts.out {
        save_results(dir, name, rows).expect("failed to save results");
        eprintln!("saved {name}.csv / {name}.jsonl to {}", dir.display());
    }
}

/// FIG3: scalability of the new algorithm at fixed p over an n sweep of
/// random graphs with m = 1.5 n (paper: speedup 4.5–5.5 at p = 8).
fn fig3(opts: &Opts) {
    let machine = MachineProfile::e4500();
    let mut rows = Vec::new();
    for mode in modes(opts) {
        let max_l = (scale_n(opts, mode) as f64).log2() as u32;
        let min_l = max_l.saturating_sub(5).max(10);
        for l in min_l..=max_l {
            let n = 1usize << l;
            let g = Workload::RandomM15.build(n, opts.seed);
            rows.push(run_cell(
                Workload::RandomM15,
                &g,
                Algorithm::Sequential,
                1,
                mode,
                &machine,
            ));
            rows.push(run_cell(
                Workload::RandomM15,
                &g,
                Algorithm::BaderCong,
                opts.p,
                mode,
                &machine,
            ));
        }
    }
    // Fig. 3 reads as speedup per n; render and also print the band.
    emit(
        opts,
        "fig3",
        &format!(
            "FIG3 — new algorithm vs sequential BFS, random graph m = 1.5n, p = {} (paper: speedup 4.5-5.5)",
            opts.p
        ),
        &rows,
    );
}

/// FIG4: one panel per input family; Sequential line + SV and the new
/// algorithm over the processor sweep.
fn fig4(opts: &Opts) {
    let machine = MachineProfile::e4500();
    let panels: Vec<Workload> = if opts.panel == "all" {
        Workload::fig4_panels().to_vec()
    } else {
        vec![Workload::from_id(&opts.panel)
            .unwrap_or_else(|| usage(&format!("unknown panel {}", opts.panel)))]
    };
    for w in panels {
        let mut rows = Vec::new();
        for mode in modes(opts) {
            let n = scale_n(opts, mode);
            let g = w.build(n, opts.seed);
            rows.push(run_cell(w, &g, Algorithm::Sequential, 1, mode, &machine));
            for p in P_SWEEP {
                rows.push(run_cell(w, &g, Algorithm::BaderCong, p, mode, &machine));
                rows.push(run_cell(w, &g, Algorithm::Sv, p, mode, &machine));
            }
        }
        emit(
            opts,
            &format!("fig4-{}", w.id()),
            &format!("FIG4 panel [{}] — {}", w.id(), w.description()),
            &rows,
        );
    }
}

/// CLAIM-RACE: "the number of vertices that appear in multiple
/// processors' queues … less than ten vertices for a graph with
/// millions of vertices."
fn races(opts: &Opts) {
    let n = 1usize << opts.scale.unwrap_or(14);
    println!("## CLAIM-RACE — concurrently-colored vertices (real threaded runs)");
    println!(
        "{:<14} {:>9} {:>11} {:>3} {:>14} {:>14}",
        "workload", "n", "m", "p", "multi-colored", "per-million"
    );
    for w in [
        Workload::RandomM15,
        Workload::RandomNLogN,
        Workload::TorusRowMajor,
    ] {
        let g = w.build(n, opts.seed);
        for p in [2usize, 4, 8] {
            let f = BaderCong::with_defaults().spanning_forest(&g, p);
            assert!(f.is_valid_for(&g));
            let per_million = f.stats.multi_colored as f64 * 1e6 / g.num_vertices() as f64;
            println!(
                "{:<14} {:>9} {:>11} {:>3} {:>14} {:>14.2}",
                w.id(),
                g.num_vertices(),
                g.num_edges(),
                p,
                f.stats.multi_colored,
                per_million
            );
        }
    }
    println!();
}

/// CLAIM-SVLABEL: SV's iteration count is labeling-sensitive; the new
/// algorithm is labeling-oblivious.
fn svlabel(opts: &Opts) {
    let machine = MachineProfile::e4500();
    let n = 1usize << opts.scale.unwrap_or(16);
    println!("## CLAIM-SVLABEL — labeling sensitivity (model executor)");
    println!(
        "{:<16} {:>9} {:>14} {:>16} {:>16}",
        "workload", "n", "sv-iterations", "sv-time", "bader-cong-time"
    );
    for w in [
        Workload::TorusRowMajor,
        Workload::TorusRandom,
        Workload::ChainSeq,
        Workload::ChainRandom,
    ] {
        let g = w.build(n, opts.seed);
        let svr = simulate_sv(&g, 8, &machine);
        let bc = simulate_bader_cong(&g, 8, TraversalSimConfig::default(), &machine);
        println!(
            "{:<16} {:>9} {:>14} {:>16} {:>16}",
            w.id(),
            g.num_vertices(),
            svr.iterations,
            st_bench::report::fmt_seconds(svr.report.predicted_seconds()),
            st_bench::report::fmt_seconds(bc.report.predicted_seconds()),
        );
    }
    println!();
}

/// CLAIM-LOCK: lock-based grafting is "slow and not scalable".
fn lockvariant(opts: &Opts) {
    let n = 1usize << opts.scale.unwrap_or(12);
    let g = Workload::RandomM15.build(n, opts.seed);
    let machine = MachineProfile::e4500();

    // Model mode first: contention only materializes with real (or
    // modeled) parallelism; the single-core host cannot show it.
    println!("## CLAIM-LOCK — SV grafting: election vs locks (model executor)");
    println!(
        "{:>3} {:>14} {:>14} {:>8}",
        "p", "election", "lock", "ratio"
    );
    for p in [1usize, 2, 4, 8] {
        let e = simulate_sv(&g, p, &machine).report.predicted_seconds();
        let l = st_model::sim::simulate_sv_lock(&g, p, &machine)
            .report
            .predicted_seconds();
        println!(
            "{:>3} {:>14} {:>14} {:>7.2}x",
            p,
            st_bench::report::fmt_seconds(e),
            st_bench::report::fmt_seconds(l),
            l / e
        );
    }
    println!();

    println!("## CLAIM-LOCK — SV grafting: election vs locks (real threaded runs)");
    println!(
        "{:>3} {:>14} {:>14} {:>8}",
        "p", "election", "lock", "ratio"
    );
    for p in [1usize, 2, 4, 8] {
        let time = |variant| {
            let cfg = SvConfig {
                variant,
                ..SvConfig::default()
            };
            // Median of 3.
            let mut times: Vec<f64> = (0..3)
                .map(|_| {
                    let s = std::time::Instant::now();
                    let f = sv::spanning_forest(&g, p, cfg);
                    assert!(f.is_valid_for(&g));
                    s.elapsed().as_secs_f64()
                })
                .collect();
            times.sort_by(f64::total_cmp);
            times[1]
        };
        let e = time(GraftVariant::Election);
        let l = time(GraftVariant::Lock);
        println!(
            "{:>3} {:>14} {:>14} {:>7.2}x",
            p,
            st_bench::report::fmt_seconds(e),
            st_bench::report::fmt_seconds(l),
            l / e
        );
    }
    println!();
}

/// MODEL: measured Helman–JáJá triplets vs the §3 closed forms.
fn model_table(opts: &Opts) {
    let machine = MachineProfile::e4500();
    let n = 1usize << opts.scale.unwrap_or(16);
    let p = opts.p;
    println!("## MODEL — measured T_M/T_C/B vs the paper's Section 3 formulas (p = {p})");
    println!(
        "{:<14} {:>10} {:>12} | {:>12} {:>12} {:>5} | {:>12} {:>12} {:>7}",
        "workload", "n", "m", "meas T_M", "analytic", "B", "sv T_M", "sv analytic", "sv B"
    );
    for w in [
        Workload::RandomM15,
        Workload::RandomNLogN,
        Workload::TorusRowMajor,
        Workload::Ad3,
    ] {
        let g = w.build(n, opts.seed);
        let (gn, gm) = (g.num_vertices(), g.num_edges());
        let bc = simulate_bader_cong(&g, p, TraversalSimConfig::default(), &machine);
        let svr = simulate_sv(&g, p, &machine);
        let bc_pred = analytic::new_algorithm(gn, gm, p);
        let sv_pred = analytic::sv_with_iterations(gn, gm, p, svr.iterations);
        println!(
            "{:<14} {:>10} {:>12} | {:>12} {:>12.0} {:>5} | {:>12} {:>12.0} {:>7}",
            w.id(),
            gn,
            gm,
            bc.report.t_m(),
            bc_pred.t_m,
            bc.report.barriers,
            svr.report.t_m(),
            sv_pred.t_m,
            svr.report.barriers,
        );
    }
    println!();
}

/// Workload characterization: the topology properties that explain the
/// figure shapes (§3's topology-dependence discussion).
fn profile_table(opts: &Opts) {
    use st_graph::stats::profile;
    let n = 1usize << opts.scale.unwrap_or(14);
    println!("## PROFILE — workload characterization at n ≈ {n}");
    println!(
        "{:<15} {:>9} {:>10} {:>7} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "workload", "n", "m", "comps", "largest%", "diam(lb)", "mean-d", "max-d", "deg2%"
    );
    for w in Workload::fig4_panels() {
        let g = w.build(n, opts.seed);
        let pr = profile(&g);
        println!(
            "{:<15} {:>9} {:>10} {:>7} {:>8.1}% {:>9} {:>8.2} {:>8} {:>6.1}%",
            w.id(),
            pr.n,
            pr.m,
            pr.components,
            100.0 * pr.largest_component as f64 / pr.n.max(1) as f64,
            pr.diameter_lb,
            pr.mean_degree,
            pr.max_degree,
            100.0 * pr.degree2_fraction
        );
    }
    println!();
}

/// EXT-MST: Kruskal vs parallel Borůvka cross-validation table.
fn mst_table(opts: &Opts) {
    use st_core::mst;
    use st_graph::WeightedGraph;
    let n = 1usize << opts.scale.unwrap_or(13);
    println!("## EXT-MST — minimum spanning forest (wall runs, weights random in 1..=10^6)");
    println!(
        "{:<15} {:>9} {:>10} {:>12} {:>14} {:>14} {:>7}",
        "workload", "n", "m", "forest-wt", "kruskal", "boruvka(p)", "iters"
    );
    for w in [Workload::RandomM15, Workload::TorusRowMajor, Workload::Ad3] {
        let g = w.build(n, opts.seed);
        let wg = WeightedGraph::with_random_weights(&g, 1_000_000, opts.seed ^ 1);
        let (mk, k) = st_bench::timing::measure_with_result(3, || mst::kruskal(&wg));
        let (mb, b) = st_bench::timing::measure_with_result(3, || mst::boruvka(&wg, opts.p));
        assert_eq!(k.total_weight, b.total_weight, "MSF weights disagree");
        println!(
            "{:<15} {:>9} {:>10} {:>12} {:>14} {:>14} {:>7}",
            w.id(),
            wg.num_vertices(),
            wg.num_edges(),
            b.total_weight,
            st_bench::report::fmt_seconds(mk.median()),
            st_bench::report::fmt_seconds(mb.median()),
            b.iterations
        );
    }
    println!();
}

fn main() {
    let opts = parse_args();
    match opts.command.as_str() {
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "races" => races(&opts),
        "svlabel" => svlabel(&opts),
        "lockvariant" => lockvariant(&opts),
        "model" => model_table(&opts),
        "profile" => profile_table(&opts),
        "mst" => mst_table(&opts),
        "all" => {
            fig3(&opts);
            fig4(&opts);
            races(&opts);
            svlabel(&opts);
            lockvariant(&opts);
            model_table(&opts);
            profile_table(&opts);
            mst_table(&opts);
        }
        other => usage(&format!("unknown command {other}")),
    }
}
