//! The `traversal-frontier` ablation: phase-2 traversal throughput of
//! the two-level frontier vs the paper's publish-everything protocol.
//!
//! ```text
//! traversal_frontier [--scale L] [--p P] [--reps R] [--seed S] [--out FILE]
//! ```
//!
//! Builds `random_connected(n = 2^L, m = 4n)` and times *only* the
//! work-stealing traversal round (no stub phase, no driver, no degree-2
//! preprocessing) under two configurations:
//!
//! * `seed` — [`TraversalConfig::paper_protocol`]: `publish_threshold
//!   = 1`, `local_batch = 1`; every discovered vertex goes through the
//!   shared queue, one lock acquisition per push and per pop.
//! * `frontier` — [`TraversalConfig::default`]: the two-level frontier
//!   with threshold publication and sleeper-driven donation.
//!
//! Every timed run is validated with `is_spanning_tree`; the medians and
//! the speedup are written as JSON (default `BENCH_traversal.json`), the
//! committed baseline the CI and the docs reference. Pass
//! `--metrics-json FILE` to additionally dump the full
//! [`JobMetrics`] (per-rank counters and, under `obs-trace`, phase
//! spans) of the last repetition of each protocol.

use std::collections::BTreeMap;
use std::path::PathBuf;

use serde::Serialize;
use st_bench::timing::measure_with_result;
use st_core::engine::Workspace;
use st_core::traversal::{TraversalConfig, TraversalOutcome};
use st_graph::gen::random_connected;
use st_graph::validate::is_spanning_tree;
use st_graph::{CsrGraph, NO_VERTEX};
use st_obs::{Counter, JobMetrics, PhaseTotal};
use st_smp::Executor;

#[derive(Clone, Debug, Serialize)]
struct ProtocolResult {
    protocol: String,
    publish_threshold: usize,
    local_batch: usize,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    steals: usize,
    stolen_items: usize,
    multi_colored: usize,
    steal_attempts: usize,
    failed_sweeps: usize,
    items_published: usize,
    items_kept_local: usize,
    barrier_wait_ns: usize,
    detector_sleeps: usize,
    detector_wakes: usize,
    starvation_trips: usize,
    phases: Vec<PhaseTotal>,
}

#[derive(Clone, Debug, Serialize)]
struct FrontierReport {
    benchmark: String,
    workload: String,
    n: usize,
    m: usize,
    p: usize,
    reps: usize,
    host_parallelism: usize,
    seed_protocol: ProtocolResult,
    two_level: ProtocolResult,
    speedup: f64,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: traversal_frontier [--scale L] [--p P] [--reps R] [--seed S] [--out FILE] \
         [--metrics-json FILE]"
    );
    std::process::exit(2)
}

struct Opts {
    scale: u32,
    p: usize,
    reps: usize,
    seed: u64,
    out: PathBuf,
    metrics_json: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: 20,
        p: 8,
        reps: 5,
        seed: 42,
        out: PathBuf::from("BENCH_traversal.json"),
        metrics_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--p" => {
                opts.p = need("--p needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--p must be an integer"))
            }
            "--reps" => {
                opts.reps = need("--reps needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--reps must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            "--metrics-json" => {
                opts.metrics_json = Some(PathBuf::from(need("--metrics-json needs a value")))
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

/// One phase-2 traversal round over connected `g`, on the persistent
/// team with all scratch drawn from `ws`. Returns the job's
/// [`JobMetrics`] (fresh counters per repetition); the parents stay in
/// the workspace for validation after the timed section.
fn traverse_once(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    cfg: TraversalConfig,
) -> JobMetrics {
    ws.begin_job(exec);
    {
        let t = ws.traversal(g, exec, cfg);
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        exec.run(|ctx| {
            let (_, outcome) = t.run_worker(ctx.rank());
            assert_eq!(outcome, TraversalOutcome::Completed);
        });
    }
    ws.finish_job(exec)
}

fn run_protocol(
    name: &str,
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    reps: usize,
    cfg: TraversalConfig,
) -> (ProtocolResult, JobMetrics) {
    let (m, metrics) = measure_with_result(reps, || traverse_once(g, exec, ws, cfg.clone()));
    // Validation reads the workspace after the timed section so the
    // copy-out is not billed to the protocol.
    assert!(
        is_spanning_tree(g, &ws.parents_prefix(g.num_vertices()), 0),
        "{name}: invalid spanning tree"
    );
    let count = |c: Counter| metrics.get(c) as usize;
    eprintln!(
        "  {name:<10} median {:.3}s  (min {:.3}s, max {:.3}s, steals {}, stolen {})",
        m.median(),
        m.min(),
        m.max(),
        count(Counter::Steals),
        count(Counter::StolenItems),
    );
    let result = ProtocolResult {
        protocol: name.to_owned(),
        publish_threshold: cfg.publish_threshold,
        local_batch: cfg.local_batch,
        median_s: m.median(),
        min_s: m.min(),
        max_s: m.max(),
        steals: count(Counter::Steals),
        stolen_items: count(Counter::StolenItems),
        multi_colored: count(Counter::MultiColored),
        steal_attempts: count(Counter::StealAttempts),
        failed_sweeps: count(Counter::FailedSweeps),
        items_published: count(Counter::ItemsPublished),
        items_kept_local: count(Counter::ItemsKeptLocal),
        barrier_wait_ns: count(Counter::BarrierWaitNs),
        detector_sleeps: count(Counter::DetectorSleeps),
        detector_wakes: count(Counter::DetectorWakes),
        starvation_trips: count(Counter::StarvationTrips),
        phases: metrics.phase_totals(),
    };
    (result, metrics)
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = 4 * n;
    eprintln!(
        "traversal-frontier: random_connected(n = {n}, m = {m}), p = {}, reps = {}",
        opts.p, opts.reps
    );
    let g = random_connected(n, m, opts.seed);

    // One persistent team + workspace for the whole process: both
    // protocols and every repetition reuse the same threads and arrays.
    let exec = Executor::new(opts.p);
    let mut ws = Workspace::new();

    let (seed_protocol, seed_metrics) = run_protocol(
        "seed",
        &g,
        &exec,
        &mut ws,
        opts.reps,
        TraversalConfig::paper_protocol(),
    );
    let (two_level, two_level_metrics) = run_protocol(
        "frontier",
        &g,
        &exec,
        &mut ws,
        opts.reps,
        TraversalConfig::default(),
    );

    if let Some(path) = &opts.metrics_json {
        let mut by_protocol = BTreeMap::new();
        by_protocol.insert("seed_protocol".to_owned(), seed_metrics.to_value());
        by_protocol.insert("two_level".to_owned(), two_level_metrics.to_value());
        let json = serde_json::to_string_pretty(&serde::Value::Object(by_protocol))
            .expect("serialize metrics");
        std::fs::write(path, json + "\n").expect("write metrics json");
        eprintln!("wrote {}", path.display());
    }

    let speedup = seed_protocol.median_s / two_level.median_s;
    eprintln!("  speedup: {speedup:.2}x");

    let report = FrontierReport {
        benchmark: "traversal-frontier".to_owned(),
        workload: format!("random_connected({n}, {m})"),
        n: g.num_vertices(),
        m: g.num_edges(),
        p: opts.p,
        reps: opts.reps,
        host_parallelism: std::thread::available_parallelism().map_or(1, |c| c.get()),
        seed_protocol,
        two_level,
        speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    eprintln!("wrote {}", opts.out.display());
}
