//! The `traversal-frontier` ablation: phase-2 traversal throughput of
//! the two-level frontier vs the paper's publish-everything protocol,
//! plus the direction-optimizing hybrid.
//!
//! ```text
//! traversal_frontier [--scale L] [--p P] [--reps R] [--seed S] [--out FILE]
//!                    [--sweep-scale L] [--sweep-p "1,2,4,8"] [--sweep-reps R]
//!                    [--hugepages]
//! ```
//!
//! Builds `random_connected(n = 2^L, m = 4n)` and times *only* the
//! work-stealing traversal round (no stub phase, no driver, no degree-2
//! preprocessing) under three configurations:
//!
//! * `seed` — [`TraversalConfig::paper_protocol`]: `publish_threshold
//!   = 1`, `local_batch = 1`; every discovered vertex goes through the
//!   shared queue, one lock acquisition per push and per pop.
//! * `frontier` — [`TraversalConfig::default`]: the two-level frontier
//!   with threshold publication and sleeper-driven donation
//!   (`ST_DIRECTION` flows through here, which is how the CI smoke
//!   forces the bottom-up and hybrid paths on a small scale).
//! * `hybrid` — the two-level frontier with
//!   [`Direction::Hybrid`]: top-down until the live frontier crosses
//!   the α/β threshold, then barriered bottom-up sweeps.
//!
//! Every timed run is validated with `is_spanning_tree`; the medians and
//! the speedups are written as JSON (default `BENCH_traversal.json`), the
//! committed baseline the CI and the docs reference. `--sweep-scale 24`
//! appends a memory-bound frontier-vs-hybrid p-sweep section (no seed
//! protocol there — publish-everything at scale 24 is pointlessly slow).
//! `--hugepages` rehomes the CSR onto a `MADV_HUGEPAGE`-advised
//! allocation first (pair it with `ST_HUGEPAGES=1` to also back the
//! workspace arenas). Pass `--metrics-json FILE` to additionally dump
//! the full [`JobMetrics`] (per-rank counters and, under `obs-trace`,
//! phase spans) of the last repetition of each protocol.

use std::collections::BTreeMap;
use std::path::PathBuf;

use serde::Serialize;
use st_bench::timing::measure_with_result;
use st_core::engine::Workspace;
use st_core::traversal::{Direction, TraversalConfig, TraversalOutcome};
use st_graph::gen::random_connected;
use st_graph::validate::is_spanning_tree;
use st_graph::{CsrGraph, NO_VERTEX};
use st_obs::{Counter, JobMetrics, PhaseTotal};
use st_smp::Executor;

#[derive(Clone, Debug, Serialize)]
struct ProtocolResult {
    protocol: String,
    direction: String,
    publish_threshold: usize,
    local_batch: usize,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    steals: usize,
    stolen_items: usize,
    multi_colored: usize,
    steal_attempts: usize,
    failed_sweeps: usize,
    items_published: usize,
    items_kept_local: usize,
    barrier_wait_ns: usize,
    detector_sleeps: usize,
    detector_wakes: usize,
    starvation_trips: usize,
    rounds_top_down: usize,
    rounds_bottom_up: usize,
    frontier_peak: usize,
    phases: Vec<PhaseTotal>,
}

/// One `p` point of the memory-bound sweep: frontier vs hybrid on the
/// same graph and team.
#[derive(Clone, Debug, Serialize)]
struct SweepPoint {
    p: usize,
    frontier: ProtocolResult,
    hybrid: ProtocolResult,
    speedup_hybrid: f64,
}

#[derive(Clone, Debug, Serialize)]
struct SweepReport {
    scale: u32,
    n: usize,
    m: usize,
    reps: usize,
    points: Vec<SweepPoint>,
}

#[derive(Clone, Debug, Serialize)]
struct FrontierReport {
    benchmark: String,
    workload: String,
    n: usize,
    m: usize,
    p: usize,
    reps: usize,
    host_parallelism: usize,
    hugepages: bool,
    csr_hugepage_advised: bool,
    seed_protocol: ProtocolResult,
    two_level: ProtocolResult,
    hybrid: ProtocolResult,
    speedup: f64,
    speedup_hybrid: f64,
    sweep: Option<SweepReport>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: traversal_frontier [--scale L] [--p P] [--reps R] [--seed S] [--out FILE] \
         [--metrics-json FILE] [--sweep-scale L] [--sweep-p LIST] [--sweep-reps R] [--hugepages]"
    );
    std::process::exit(2)
}

struct Opts {
    scale: u32,
    p: usize,
    reps: usize,
    seed: u64,
    out: PathBuf,
    metrics_json: Option<PathBuf>,
    sweep_scale: Option<u32>,
    sweep_p: Vec<usize>,
    sweep_reps: usize,
    hugepages: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        scale: 20,
        p: 8,
        reps: 5,
        seed: 42,
        out: PathBuf::from("BENCH_traversal.json"),
        metrics_json: None,
        sweep_scale: None,
        sweep_p: vec![1, 2, 4, 8],
        sweep_reps: 3,
        hugepages: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match a.as_str() {
            "--scale" => {
                opts.scale = need("--scale needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--scale must be an integer"))
            }
            "--p" => {
                opts.p = need("--p needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--p must be an integer"))
            }
            "--reps" => {
                opts.reps = need("--reps needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--reps must be an integer"))
            }
            "--seed" => {
                opts.seed = need("--seed needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--out" => opts.out = PathBuf::from(need("--out needs a value")),
            "--metrics-json" => {
                opts.metrics_json = Some(PathBuf::from(need("--metrics-json needs a value")))
            }
            "--sweep-scale" => {
                opts.sweep_scale = Some(
                    need("--sweep-scale needs a value")
                        .parse()
                        .unwrap_or_else(|_| usage("--sweep-scale must be an integer")),
                )
            }
            "--sweep-p" => {
                opts.sweep_p = need("--sweep-p needs a value")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--sweep-p must be a comma list of integers"))
                    })
                    .collect();
                if opts.sweep_p.is_empty() {
                    usage("--sweep-p must name at least one team size");
                }
            }
            "--sweep-reps" => {
                opts.sweep_reps = need("--sweep-reps needs a value")
                    .parse()
                    .unwrap_or_else(|_| usage("--sweep-reps must be an integer"))
            }
            "--hugepages" => opts.hugepages = true,
            other => usage(&format!("unknown option {other}")),
        }
    }
    opts
}

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::TopDown => "top-down",
        Direction::BottomUp => "bottom-up",
        Direction::Hybrid => "hybrid",
    }
}

/// Rehomes `g` onto a hugepage-advised allocation when asked, reporting
/// whether the kernel accepted the advice.
fn maybe_hugepage(g: CsrGraph, want: bool) -> (CsrGraph, bool) {
    if !want {
        return (g, false);
    }
    let (g, advised) = g.into_hugepage_backed();
    eprintln!("  hugepages: CSR rehomed (kernel advised: {advised})");
    (g, advised)
}

/// One phase-2 traversal round over connected `g`, on the persistent
/// team with all scratch drawn from `ws`. Returns the job's
/// [`JobMetrics`] (fresh counters per repetition); the parents stay in
/// the workspace for validation after the timed section.
fn traverse_once(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    cfg: TraversalConfig,
) -> JobMetrics {
    ws.begin_job(exec);
    {
        let t = ws.traversal(g, exec, cfg);
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        exec.run(|ctx| {
            let (_, outcome) = t.run_worker_ctx(&ctx);
            assert_eq!(outcome, TraversalOutcome::Completed);
        });
    }
    ws.finish_job(exec)
}

fn run_protocol(
    name: &str,
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    reps: usize,
    cfg: TraversalConfig,
) -> (ProtocolResult, JobMetrics) {
    let (m, metrics) = measure_with_result(reps, || traverse_once(g, exec, ws, cfg.clone()));
    // Validation reads the workspace after the timed section so the
    // copy-out is not billed to the protocol.
    assert!(
        is_spanning_tree(g, &ws.parents_prefix(g.num_vertices()), 0),
        "{name}: invalid spanning tree"
    );
    let count = |c: Counter| metrics.get(c) as usize;
    eprintln!(
        "  {name:<10} median {:.3}s  (min {:.3}s, max {:.3}s, steals {}, stolen {}, \
         rounds td/bu {}/{})",
        m.median(),
        m.min(),
        m.max(),
        count(Counter::Steals),
        count(Counter::StolenItems),
        count(Counter::RoundsTopDown),
        count(Counter::RoundsBottomUp),
    );
    let result = ProtocolResult {
        protocol: name.to_owned(),
        direction: direction_name(cfg.direction).to_owned(),
        publish_threshold: cfg.publish_threshold,
        local_batch: cfg.local_batch,
        median_s: m.median(),
        min_s: m.min(),
        max_s: m.max(),
        steals: count(Counter::Steals),
        stolen_items: count(Counter::StolenItems),
        multi_colored: count(Counter::MultiColored),
        steal_attempts: count(Counter::StealAttempts),
        failed_sweeps: count(Counter::FailedSweeps),
        items_published: count(Counter::ItemsPublished),
        items_kept_local: count(Counter::ItemsKeptLocal),
        barrier_wait_ns: count(Counter::BarrierWaitNs),
        detector_sleeps: count(Counter::DetectorSleeps),
        detector_wakes: count(Counter::DetectorWakes),
        starvation_trips: count(Counter::StarvationTrips),
        rounds_top_down: count(Counter::RoundsTopDown),
        rounds_bottom_up: count(Counter::RoundsBottomUp),
        frontier_peak: count(Counter::FrontierPeak),
        phases: metrics.phases.clone(),
    };
    (result, metrics)
}

fn main() {
    let opts = parse_args();
    let n = 1usize << opts.scale;
    let m = 4 * n;
    eprintln!(
        "traversal-frontier: random_connected(n = {n}, m = {m}), p = {}, reps = {}",
        opts.p, opts.reps
    );
    let (g, csr_hugepage_advised) =
        maybe_hugepage(random_connected(n, m, opts.seed), opts.hugepages);

    // One persistent team + workspace for the whole process: every
    // protocol and every repetition reuse the same threads and arrays.
    let exec = Executor::new(opts.p);
    let mut ws = Workspace::new();

    let hybrid_cfg = TraversalConfig {
        direction: Direction::Hybrid,
        ..TraversalConfig::default()
    };

    let (seed_protocol, seed_metrics) = run_protocol(
        "seed",
        &g,
        &exec,
        &mut ws,
        opts.reps,
        TraversalConfig::paper_protocol(),
    );
    let (two_level, two_level_metrics) = run_protocol(
        "frontier",
        &g,
        &exec,
        &mut ws,
        opts.reps,
        TraversalConfig::default(),
    );
    let (hybrid, hybrid_metrics) =
        run_protocol("hybrid", &g, &exec, &mut ws, opts.reps, hybrid_cfg.clone());

    if let Some(path) = &opts.metrics_json {
        let mut by_protocol = BTreeMap::new();
        by_protocol.insert("seed_protocol".to_owned(), seed_metrics.to_value());
        by_protocol.insert("two_level".to_owned(), two_level_metrics.to_value());
        by_protocol.insert("hybrid".to_owned(), hybrid_metrics.to_value());
        let json = serde_json::to_string_pretty(&serde::Value::Object(by_protocol))
            .expect("serialize metrics");
        std::fs::write(path, json + "\n").expect("write metrics json");
        eprintln!("wrote {}", path.display());
    }

    let speedup = seed_protocol.median_s / two_level.median_s;
    let speedup_hybrid = two_level.median_s / hybrid.median_s;
    eprintln!("  speedup (seed/frontier): {speedup:.2}x");
    eprintln!("  speedup (frontier/hybrid): {speedup_hybrid:.2}x");

    let sweep = opts.sweep_scale.map(|scale| {
        let sn = 1usize << scale;
        let sm = 4 * sn;
        eprintln!(
            "sweep: random_connected(n = {sn}, m = {sm}), p in {:?}, reps = {}",
            opts.sweep_p, opts.sweep_reps
        );
        let (sg, _) = maybe_hugepage(random_connected(sn, sm, opts.seed), opts.hugepages);
        let mut points = Vec::new();
        for &p in &opts.sweep_p {
            eprintln!("  p = {p}");
            let exec = Executor::new(p);
            let (frontier, _) = run_protocol(
                "frontier",
                &sg,
                &exec,
                &mut ws,
                opts.sweep_reps,
                TraversalConfig::default(),
            );
            let (hybrid, _) = run_protocol(
                "hybrid",
                &sg,
                &exec,
                &mut ws,
                opts.sweep_reps,
                hybrid_cfg.clone(),
            );
            let speedup_hybrid = frontier.median_s / hybrid.median_s;
            eprintln!("    hybrid speedup at p = {p}: {speedup_hybrid:.2}x");
            points.push(SweepPoint {
                p,
                frontier,
                hybrid,
                speedup_hybrid,
            });
        }
        SweepReport {
            scale,
            n: sn,
            m: sg.num_edges(),
            reps: opts.sweep_reps,
            points,
        }
    });

    let report = FrontierReport {
        benchmark: "traversal-frontier".to_owned(),
        workload: format!("random_connected({n}, {m})"),
        n: g.num_vertices(),
        m: g.num_edges(),
        p: opts.p,
        reps: opts.reps,
        host_parallelism: std::thread::available_parallelism().map_or(1, |c| c.get()),
        hugepages: opts.hugepages,
        csr_hugepage_advised,
        seed_protocol,
        two_level,
        hybrid,
        speedup,
        speedup_hybrid,
        sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    eprintln!("wrote {}", opts.out.display());
}
