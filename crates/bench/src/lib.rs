#![warn(missing_docs)]

//! # st-bench — the experiment harness
//!
//! Regenerates every result figure of the paper (see DESIGN.md §3 for
//! the experiment index):
//!
//! * [`workloads`] — the paper's input families at any scale, with the
//!   exact parameters of Figs. 3–4 as presets.
//! * [`runner`] — runs one (workload, algorithm, p) cell either in
//!   **model mode** (the deterministic Helman–JáJá executor of
//!   `st-model`, used for figure shapes — see DESIGN.md §4) or in
//!   **wall mode** (real threads on the host, used for correctness and
//!   host-relative timings).
//! * [`report`] — table/CSV/JSON rendering of result rows.
//!
//! The `figures` binary ties these together:
//!
//! ```text
//! cargo run -p st-bench --release --bin figures -- fig3
//! cargo run -p st-bench --release --bin figures -- fig4 --panel random
//! cargo run -p st-bench --release --bin figures -- all --scale 16
//! ```

pub mod report;
pub mod runner;
pub mod timing;
pub mod workloads;

pub use runner::{run_cell, Algorithm, Mode, ResultRow};
pub use workloads::Workload;
