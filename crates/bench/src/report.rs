//! Rendering result rows as aligned tables, CSV, and JSON lines.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::runner::ResultRow;

/// Formats seconds with sensible precision for a log-log-plot reading.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Renders rows as an aligned text table grouped the way the paper's
/// plots read: one line per (algorithm, p), with the sequential row
/// first as the reference line.
pub fn render_table(title: &str, rows: &[ResultRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    if rows.is_empty() {
        let _ = writeln!(out, "(no rows)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<14} {:<11} {:>9} {:>11} {:>3} {:>12} {:>9} {:>6}",
        "workload", "algorithm", "n", "m", "p", "time", "speedup", "iters"
    );
    // Reference: the sequential time for the same (workload, n, mode).
    let seq_time = |row: &ResultRow| -> Option<f64> {
        rows.iter()
            .find(|r| {
                r.workload == row.workload
                    && r.n == row.n
                    && r.mode == row.mode
                    && r.algorithm == "seq"
            })
            .map(|r| r.seconds)
    };
    for r in rows {
        let speedup = match seq_time(r) {
            Some(seq) if r.algorithm != "seq" && r.seconds > 0.0 => {
                format!("{:>8.2}x", seq / r.seconds)
            }
            _ => format!("{:>9}", "-"),
        };
        let iters = r
            .iterations
            .map(|i| i.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<14} {:<11} {:>9} {:>11} {:>3} {:>12} {} {:>6}",
            r.workload,
            r.algorithm,
            r.n,
            r.m,
            r.p,
            fmt_seconds(r.seconds),
            speedup,
            iters
        );
    }
    out
}

/// Writes rows as CSV (with header).
pub fn write_csv<W: Write>(mut w: W, rows: &[ResultRow]) -> io::Result<()> {
    writeln!(
        w,
        "workload,algorithm,mode,n,m,p,seconds,iterations,multi_colored,fallback,\
         steals,stolen_items,items_published"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{:?},{},{},{},{},{},{},{},{},{},{}",
            r.workload,
            r.algorithm,
            r.mode,
            r.n,
            r.m,
            r.p,
            r.seconds,
            r.iterations.map(|v| v.to_string()).unwrap_or_default(),
            r.multi_colored.map(|v| v.to_string()).unwrap_or_default(),
            r.fallback.map(|v| v.to_string()).unwrap_or_default(),
            r.steals.map(|v| v.to_string()).unwrap_or_default(),
            r.stolen_items.map(|v| v.to_string()).unwrap_or_default(),
            r.items_published.map(|v| v.to_string()).unwrap_or_default(),
        )?;
    }
    Ok(())
}

/// Saves rows as JSON lines next to the CSV, for machine consumption.
pub fn save_results(dir: &Path, name: &str, rows: &[ResultRow]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let csv_path = dir.join(format!("{name}.csv"));
    write_csv(std::fs::File::create(&csv_path)?, rows)?;
    let json_path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::File::create(&json_path)?;
    for r in rows {
        let line = serde_json::to_string(r).map_err(io::Error::other)?;
        writeln!(f, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Mode;

    fn row(algorithm: &str, p: usize, seconds: f64) -> ResultRow {
        ResultRow {
            workload: "random".into(),
            algorithm: algorithm.into(),
            mode: Mode::Model,
            n: 1000,
            m: 1500,
            p,
            seconds,
            iterations: None,
            multi_colored: None,
            fallback: None,
            steals: None,
            stolen_items: None,
            items_published: None,
        }
    }

    #[test]
    fn table_contains_speedup_column() {
        let rows = vec![row("seq", 1, 1.0), row("bader-cong", 8, 0.2)];
        let t = render_table("Fig X", &rows);
        assert!(t.contains("5.00x"), "{t}");
        assert!(t.contains("Fig X"));
    }

    #[test]
    fn csv_shape() {
        let rows = vec![row("seq", 1, 0.5)];
        let mut buf = Vec::new();
        write_csv(&mut buf, &rows).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().next().unwrap().starts_with("workload,"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(0.0025), "2.500 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 µs");
    }

    #[test]
    fn save_results_writes_both_files() {
        let dir = std::env::temp_dir().join(format!("st_bench_report_{}", std::process::id()));
        save_results(&dir, "t", &[row("seq", 1, 1.0)]).unwrap();
        assert!(dir.join("t.csv").exists());
        assert!(dir.join("t.jsonl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
