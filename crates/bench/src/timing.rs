//! Robust wall-clock measurement helpers.
//!
//! Wall timings on a shared (and here, single-core) host are noisy;
//! every wall-mode cell reports the **median** of several runs, with the
//! spread kept for the record.

use std::time::Instant;

/// Summary of repeated measurements (seconds).
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Individual run times, in execution order.
    pub runs: Vec<f64>,
}

impl Measurement {
    /// Median run time (the headline number).
    pub fn median(&self) -> f64 {
        let mut sorted = self.runs.clone();
        sorted.sort_by(f64::total_cmp);
        match sorted.len() {
            0 => 0.0,
            n if n % 2 == 1 => sorted[n / 2],
            n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
        }
    }

    /// Fastest run.
    pub fn min(&self) -> f64 {
        self.runs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest run.
    pub fn max(&self) -> f64 {
        self.runs.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().sum::<f64>() / self.runs.len() as f64
        }
    }

    /// Relative spread (max − min) / median; large values flag noisy
    /// cells.
    pub fn spread(&self) -> f64 {
        let med = self.median();
        if med == 0.0 {
            0.0
        } else {
            (self.max() - self.min()) / med
        }
    }
}

/// Runs `f` `reps` times, timing each run.
///
/// # Panics
///
/// Panics if `reps == 0`.
pub fn measure<F: FnMut()>(reps: usize, mut f: F) -> Measurement {
    assert!(reps > 0, "need at least one repetition");
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        runs.push(start.elapsed().as_secs_f64());
    }
    Measurement { runs }
}

/// Like [`measure`], but keeps the last run's return value (so the
/// caller can validate the output it just timed).
pub fn measure_with_result<T, F: FnMut() -> T>(reps: usize, mut f: F) -> (Measurement, T) {
    assert!(reps > 0, "need at least one repetition");
    let mut runs = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        runs.push(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (Measurement { runs }, last.expect("reps > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let m = Measurement {
            runs: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(m.median(), 2.0);
        let m = Measurement {
            runs: vec![4.0, 1.0, 2.0, 3.0],
        };
        assert_eq!(m.median(), 2.5);
    }

    #[test]
    fn min_max_mean_spread() {
        let m = Measurement {
            runs: vec![1.0, 2.0, 4.0],
        };
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 4.0);
        assert!((m.mean() - 7.0 / 3.0).abs() < 1e-12);
        assert!((m.spread() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_measurement_is_zeroes() {
        let m = Measurement { runs: vec![] };
        assert_eq!(m.median(), 0.0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.spread(), 0.0);
    }

    #[test]
    fn measure_counts_reps() {
        let mut calls = 0;
        let m = measure(5, || calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(m.runs.len(), 5);
        assert!(m.runs.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn measure_with_result_returns_last() {
        let mut i = 0;
        let (m, last) = measure_with_result(3, || {
            i += 1;
            i
        });
        assert_eq!(m.runs.len(), 3);
        assert_eq!(last, 3);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        measure(0, || {});
    }
}
