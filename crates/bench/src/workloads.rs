//! The paper's experiment inputs (§4 "Experimental Data"), scale-
//! parameterized.
//!
//! The paper's Fig. 4 uses n = 1M vertices throughout; the harness
//! accepts any scale so the same workloads drive quick wall-clock runs,
//! full-scale model runs, and Criterion micro-benchmarks.

use serde::{Deserialize, Serialize};
use st_graph::gen;
use st_graph::label::{random_permutation, relabel};
use st_graph::CsrGraph;

/// One experiment input family with the paper's parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// 2D torus, row-major labeling (Fig. 4 panel a).
    TorusRowMajor,
    /// 2D torus, random labeling (Fig. 4 panel b).
    TorusRandom,
    /// Random graph with m = 20M ≈ n log n at n = 1M, i.e.
    /// m = n·log₂(n)/1.048… — scaled as m = n·20 · (n/1M)⁰ shape; we use
    /// m = n·log₂(n)·(20/20) ≈ n·log₂(n) (Fig. 4 panel c).
    RandomNLogN,
    /// Random graph with m = 1.5 n (Fig. 3's scalability study).
    RandomM15,
    /// 2D mesh with 60% edge probability (Fig. 4 panel d).
    Mesh2D60,
    /// 3D mesh with 40% edge probability (Fig. 4 panel e).
    Mesh3D40,
    /// Geometric k-nearest-neighbor graph with k = 3 (Fig. 4 panel f).
    Ad3,
    /// Geographic graph, flat mode (Fig. 4 panel g).
    GeoFlat,
    /// Geographic graph, hierarchical mode (Fig. 4 panel h).
    GeoHier,
    /// Degenerate chain, sequential labeling (Fig. 4 panel i).
    ChainSeq,
    /// Degenerate chain, random labeling (Fig. 4 panel j).
    ChainRandom,
}

impl Workload {
    /// All ten Fig. 4 panels in paper order.
    pub fn fig4_panels() -> [Workload; 10] {
        use Workload::*;
        [
            TorusRowMajor,
            TorusRandom,
            RandomNLogN,
            Mesh2D60,
            Mesh3D40,
            Ad3,
            GeoFlat,
            GeoHier,
            ChainSeq,
            ChainRandom,
        ]
    }

    /// Stable identifier used on the command line and in CSV output.
    pub fn id(&self) -> &'static str {
        use Workload::*;
        match self {
            TorusRowMajor => "torus-rowmajor",
            TorusRandom => "torus-random",
            RandomNLogN => "random",
            RandomM15 => "random-m15",
            Mesh2D60 => "mesh2d60",
            Mesh3D40 => "mesh3d40",
            Ad3 => "ad3",
            GeoFlat => "geo-flat",
            GeoHier => "geo-hier",
            ChainSeq => "chain-seq",
            ChainRandom => "chain-random",
        }
    }

    /// Parses a command-line panel identifier.
    pub fn from_id(id: &str) -> Option<Workload> {
        Workload::fig4_panels()
            .into_iter()
            .chain([Workload::RandomM15])
            .find(|w| w.id() == id)
    }

    /// Human-readable description matching the paper's terminology.
    pub fn description(&self) -> &'static str {
        use Workload::*;
        match self {
            TorusRowMajor => "2D torus, row-major vertex labels",
            TorusRandom => "2D torus, random vertex labels",
            RandomNLogN => "random graph, m = n log n",
            RandomM15 => "random graph, m = 1.5 n",
            Mesh2D60 => "2D mesh, 60% edge probability (2D60)",
            Mesh3D40 => "3D mesh, 40% edge probability (3D40)",
            Ad3 => "geometric graph, k = 3 nearest neighbors (AD3)",
            GeoFlat => "geographic graph, flat mode",
            GeoHier => "geographic graph, hierarchical mode",
            ChainSeq => "degenerate chain, sequential labels",
            ChainRandom => "degenerate chain, random labels",
        }
    }

    /// Builds the graph at approximately `n` vertices.
    ///
    /// Exact vertex counts differ slightly per family (tori need square
    /// factors, the hierarchy rounds up); the returned graph's true n is
    /// authoritative.
    pub fn build(&self, n: usize, seed: u64) -> CsrGraph {
        use Workload::*;
        match self {
            TorusRowMajor => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                gen::torus2d(side, side)
            }
            TorusRandom => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                let g = gen::torus2d(side, side);
                relabel(&g, &random_permutation(g.num_vertices(), seed ^ 0xBEEF))
            }
            RandomNLogN => {
                let m = (n as f64 * (n.max(2) as f64).log2()) as usize;
                let max = n * n.saturating_sub(1) / 2;
                gen::random_gnm(n, m.min(max), seed)
            }
            RandomM15 => gen::random_gnm(n, 3 * n / 2, seed),
            Mesh2D60 => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                gen::mesh2d_p(side, side, 0.6, seed)
            }
            Mesh3D40 => {
                let side = (n as f64).cbrt().round().max(1.0) as usize;
                gen::mesh3d_p(side, side, side, 0.4, seed)
            }
            Ad3 => gen::ad3(n, seed),
            GeoFlat => {
                gen::geographic_flat(n, gen::GeoFlatParams::with_target_degree(n, 4.0), seed)
            }
            GeoHier => gen::geographic_hier(gen::GeoHierParams::with_approx_n(n), seed),
            ChainSeq => gen::chain(n),
            ChainRandom => {
                let g = gen::chain(n);
                relabel(&g, &random_permutation(n, seed ^ 0xC0FFEE))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for w in Workload::fig4_panels()
            .into_iter()
            .chain([Workload::RandomM15])
        {
            assert_eq!(Workload::from_id(w.id()), Some(w));
        }
        assert_eq!(Workload::from_id("nope"), None);
    }

    #[test]
    fn all_panels_build_small() {
        for w in Workload::fig4_panels() {
            let g = w.build(512, 7);
            assert!(g.num_vertices() >= 256, "{} too small", w.id());
            assert!(g.is_symmetric());
        }
    }

    #[test]
    fn torus_labelings_are_isomorphic() {
        let a = Workload::TorusRowMajor.build(400, 1);
        let b = Workload::TorusRandom.build(400, 1);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn random_m15_edge_count() {
        let g = Workload::RandomM15.build(1000, 2);
        assert_eq!(g.num_edges(), 1500);
    }

    #[test]
    fn chain_families() {
        let g = Workload::ChainSeq.build(100, 0);
        assert_eq!(g.num_edges(), 99);
        let h = Workload::ChainRandom.build(100, 0);
        assert_eq!(h.num_edges(), 99);
        assert_ne!(g, h);
    }

    #[test]
    fn builds_are_deterministic() {
        for w in [Workload::RandomNLogN, Workload::GeoFlat, Workload::Ad3] {
            assert_eq!(w.build(300, 5), w.build(300, 5));
        }
    }
}
