//! Experiment cell runner.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use st_core::bader_cong::{BaderCong, Config};
use st_core::engine::Engine;
use st_core::hcs::Hcs;
use st_core::seq;
use st_core::sv::{GraftVariant, Sv, SvConfig};
use st_graph::CsrGraph;
use st_model::sim::{
    simulate_bader_cong, simulate_sequential_bfs, simulate_sv, TraversalSimConfig,
};
use st_model::MachineProfile;

use crate::workloads::Workload;

/// Repetitions per wall-mode cell (median reported).
const WALL_REPS: usize = 3;

/// Process-wide persistent engines, one per team size. Wall cells at the
/// same `p` share a team: threads spawn once per process, and the
/// workspace arena is recycled across workloads — matching the paper's
/// methodology of timing a long series of inputs on one warm machine.
static ENGINES: OnceLock<Mutex<HashMap<usize, Engine>>> = OnceLock::new();

/// Runs `f` on the shared engine for team size `p` (created on first
/// use).
pub fn with_engine<R>(p: usize, f: impl FnOnce(&mut Engine) -> R) -> R {
    let pool = ENGINES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().expect("engine pool poisoned");
    let engine = pool.entry(p).or_insert_with(|| Engine::new(p));
    f(engine)
}

/// The Bader–Cong configuration wall-mode cells run. The traversal
/// frontier knobs (`ST_PUBLISH_THRESHOLD`, `ST_PUBLISH_ON_SLEEPERS`,
/// `ST_LOCAL_BATCH`) are read from the environment by
/// [`TraversalConfig::default`](st_core::traversal::TraversalConfig),
/// so sweeps need no recompile and no harness-side parsing.
pub fn bader_cong_wall_config() -> Config {
    Config::default()
}

/// Which algorithm a cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Sequential BFS (the paper's "Sequential" line).
    Sequential,
    /// The Bader–Cong work-stealing algorithm.
    BaderCong,
    /// Shiloach–Vishkin, election grafting.
    Sv,
    /// Shiloach–Vishkin, lock grafting (CLAIM-LOCK baseline).
    SvLock,
    /// Hirschberg–Chandra–Sarwate.
    Hcs,
}

impl Algorithm {
    /// Stable identifier for output and the command line.
    pub fn id(&self) -> &'static str {
        match self {
            Algorithm::Sequential => "seq",
            Algorithm::BaderCong => "bader-cong",
            Algorithm::Sv => "sv",
            Algorithm::SvLock => "sv-lock",
            Algorithm::Hcs => "hcs",
        }
    }
}

/// How a cell is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Deterministic Helman–JáJá executor (E4500 profile): the figure-
    /// shape substitute for the paper's 14-way SMP (DESIGN.md §4).
    Model,
    /// Real threads on the host, wall-clock timed. On the single-core
    /// reproduction host this exercises the full code paths but cannot
    /// show real speedup.
    Wall,
}

/// One measured cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResultRow {
    /// Workload id.
    pub workload: String,
    /// Algorithm id.
    pub algorithm: String,
    /// Evaluation mode.
    pub mode: Mode,
    /// Vertices in the built graph.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// Processors.
    pub p: usize,
    /// Time in seconds (model-predicted or wall-clock).
    pub seconds: f64,
    /// Iterations (SV/HCS) when applicable.
    pub iterations: Option<usize>,
    /// Multi-colored race count (Bader–Cong wall runs).
    pub multi_colored: Option<usize>,
    /// Whether the starvation fallback fired.
    pub fallback: Option<bool>,
    /// Successful steals (work-stealing wall runs).
    pub steals: Option<usize>,
    /// Queue items moved by steals.
    pub stolen_items: Option<usize>,
    /// Items that ever entered a shared queue (seeds + threshold
    /// publications + steal re-pushes).
    pub items_published: Option<usize>,
}

/// Runs one (workload, algorithm, p) cell on a pre-built graph.
///
/// `Model` mode supports `Sequential`, `BaderCong` and `Sv` (the three
/// lines of the paper's figures); `SvLock` and `Hcs` exist only as real
/// implementations and run in `Wall` mode.
///
/// # Panics
///
/// Panics if an algorithm's output fails spanning-forest validation —
/// the harness refuses to report timings for wrong answers.
pub fn run_cell(
    workload: Workload,
    g: &CsrGraph,
    algorithm: Algorithm,
    p: usize,
    mode: Mode,
    machine: &MachineProfile,
) -> ResultRow {
    let (n, m) = (g.num_vertices(), g.num_edges());
    let mut iterations = None;
    let mut multi_colored = None;
    let mut fallback = None;
    let mut steals = None;
    let mut stolen_items = None;
    let mut items_published = None;

    let seconds = match (mode, algorithm) {
        (Mode::Model, Algorithm::Sequential) => {
            let (report, parents) = simulate_sequential_bfs(g, machine);
            assert_valid(g, &parents, workload, algorithm);
            report.predicted_seconds()
        }
        (Mode::Model, Algorithm::BaderCong) => {
            let out = simulate_bader_cong(g, p, TraversalSimConfig::default(), machine);
            assert_valid(g, &out.parents, workload, algorithm);
            out.report.predicted_seconds()
        }
        (Mode::Model, Algorithm::Sv) => {
            let out = simulate_sv(g, p, machine);
            iterations = Some(out.iterations);
            out.report.predicted_seconds()
        }
        (Mode::Model, other) => {
            panic!("model mode does not implement {:?}; use wall mode", other)
        }
        // Wall cells report the median of WALL_REPS runs; the last run's
        // output is validated.
        (Mode::Wall, Algorithm::Sequential) => {
            let (m, f) = crate::timing::measure_with_result(WALL_REPS, || seq::bfs_forest(g));
            assert_valid(g, &f.parents, workload, algorithm);
            m.median()
        }
        (Mode::Wall, Algorithm::BaderCong) => {
            let algo = BaderCong::new(bader_cong_wall_config());
            let (m, f) = with_engine(p, |e| {
                crate::timing::measure_with_result(WALL_REPS, || e.run(&algo, g))
            });
            assert_valid(g, &f.parents, workload, algorithm);
            multi_colored = Some(f.stats.multi_colored);
            fallback = Some(f.stats.fallback_triggered);
            steals = Some(f.stats.steals);
            stolen_items = Some(f.stats.stolen_items);
            items_published = Some(f.stats.metrics.get(st_obs::Counter::ItemsPublished) as usize);
            m.median()
        }
        (Mode::Wall, Algorithm::Sv) | (Mode::Wall, Algorithm::SvLock) => {
            let algo = Sv::new(SvConfig {
                variant: if algorithm == Algorithm::SvLock {
                    GraftVariant::Lock
                } else {
                    GraftVariant::Election
                },
                ..SvConfig::default()
            });
            let (m, f) = with_engine(p, |e| {
                crate::timing::measure_with_result(WALL_REPS, || e.run(&algo, g))
            });
            assert_valid(g, &f.parents, workload, algorithm);
            iterations = Some(f.stats.iterations);
            m.median()
        }
        (Mode::Wall, Algorithm::Hcs) => {
            let (m, f) = with_engine(p, |e| {
                crate::timing::measure_with_result(WALL_REPS, || e.run(&Hcs, g))
            });
            assert_valid(g, &f.parents, workload, algorithm);
            iterations = Some(f.stats.iterations);
            m.median()
        }
    };

    ResultRow {
        workload: workload.id().to_owned(),
        algorithm: algorithm.id().to_owned(),
        mode,
        n,
        m,
        p,
        seconds,
        iterations,
        multi_colored,
        fallback,
        steals,
        stolen_items,
        items_published,
    }
}

fn assert_valid(g: &CsrGraph, parents: &[st_graph::VertexId], w: Workload, a: Algorithm) {
    assert!(
        st_graph::validate::is_spanning_forest(g, parents),
        "{} produced an invalid forest on {}",
        a.id(),
        w.id()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_cells_for_all_three_lines() {
        let w = Workload::RandomM15;
        let g = w.build(2_000, 3);
        let machine = MachineProfile::e4500();
        for algo in [Algorithm::Sequential, Algorithm::BaderCong, Algorithm::Sv] {
            let row = run_cell(w, &g, algo, 4, Mode::Model, &machine);
            assert!(row.seconds > 0.0, "{}", algo.id());
            assert_eq!(row.n, 2_000);
        }
    }

    #[test]
    fn wall_cells_for_all_algorithms() {
        let w = Workload::TorusRowMajor;
        let g = w.build(400, 1);
        let machine = MachineProfile::e4500();
        for algo in [
            Algorithm::Sequential,
            Algorithm::BaderCong,
            Algorithm::Sv,
            Algorithm::SvLock,
            Algorithm::Hcs,
        ] {
            let row = run_cell(w, &g, algo, 2, Mode::Wall, &machine);
            assert!(row.seconds >= 0.0, "{}", algo.id());
        }
    }

    #[test]
    #[should_panic(expected = "model mode does not implement")]
    fn model_mode_rejects_hcs() {
        let w = Workload::ChainSeq;
        let g = w.build(50, 0);
        run_cell(
            w,
            &g,
            Algorithm::Hcs,
            2,
            Mode::Model,
            &MachineProfile::e4500(),
        );
    }

    #[test]
    fn model_speedup_shape_on_random() {
        // Who-wins shape at moderate scale: BaderCong(8) < Sequential <
        // SV(8) is the expected ordering on random graphs per Fig. 4c.
        let w = Workload::RandomM15;
        let g = w.build(1 << 13, 5);
        let machine = MachineProfile::e4500();
        let seq_row = run_cell(w, &g, Algorithm::Sequential, 1, Mode::Model, &machine);
        let bc = run_cell(w, &g, Algorithm::BaderCong, 8, Mode::Model, &machine);
        let sv = run_cell(w, &g, Algorithm::Sv, 8, Mode::Model, &machine);
        assert!(bc.seconds < seq_row.seconds);
        assert!(sv.seconds > bc.seconds);
    }
}
