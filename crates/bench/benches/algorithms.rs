// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Wall-clock Criterion benchmarks of the spanning-tree algorithms.
//!
//! One group per figure data series (see DESIGN.md §3): these exercise
//! the *real threaded implementations* on the host. On the single-core
//! reproduction host the parallel variants cannot beat the sequential
//! baseline in wall-clock terms; the figure *shapes* come from the model
//! executor (`figures` binary), and these benches document the host
//! numbers and catch performance regressions in the implementations.
//!
//! Sizes are kept moderate so `cargo bench` completes in reasonable time
//! on one core; scale them with `ST_BENCH_SCALE` (log2 of n, default 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_bench::workloads::Workload;
use st_core::bader_cong::BaderCong;
use st_core::sv::{self, SvConfig};
use st_core::{hcs, seq};

fn scale() -> usize {
    // Typed env parsing: a malformed ST_BENCH_SCALE aborts the bench
    // run instead of silently reverting to the default scale.
    let cfg = st_core::RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
    1usize << cfg.bench_scale.unwrap_or(12)
}

/// FIG3 series: sequential BFS vs the new algorithm on random m = 1.5n.
fn bench_fig3_series(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 42);
    let mut group = c.benchmark_group("fig3_random_m15");
    group.sample_size(10);
    group.bench_function("sequential_bfs", |b| b.iter(|| seq::bfs_forest(&g)));
    for p in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("bader_cong", p), &p, |b, &p| {
            b.iter(|| BaderCong::with_defaults().spanning_forest(&g, p))
        });
    }
    group.finish();
}

/// FIG4 panels, one representative per topology class: the three
/// algorithm lines at p = 4.
fn bench_fig4_lines(c: &mut Criterion) {
    let n = scale();
    for w in [
        Workload::TorusRowMajor,
        Workload::RandomNLogN,
        Workload::Mesh2D60,
        Workload::Ad3,
        Workload::GeoHier,
        Workload::ChainSeq,
    ] {
        let g = w.build(n, 42);
        let mut group = c.benchmark_group(format!("fig4_{}", w.id()));
        group.sample_size(10);
        group.bench_function("sequential_bfs", |b| b.iter(|| seq::bfs_forest(&g)));
        group.bench_function("bader_cong_p4", |b| {
            b.iter(|| BaderCong::with_defaults().spanning_forest(&g, 4))
        });
        group.bench_function("sv_p4", |b| {
            b.iter(|| sv::spanning_forest(&g, 4, SvConfig::default()))
        });
        group.finish();
    }
}

/// HCS vs SV (the paper dropped HCS because it behaves like SV — verify
/// they are in the same ballpark).
fn bench_hcs_vs_sv(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 42);
    let mut group = c.benchmark_group("hcs_vs_sv");
    group.sample_size(10);
    group.bench_function("sv_p4", |b| {
        b.iter(|| sv::spanning_forest(&g, 4, SvConfig::default()))
    });
    group.bench_function("hcs_p4", |b| b.iter(|| hcs::spanning_forest(&g, 4)));
    group.finish();
}

/// Sequential baselines against each other (BFS is the paper's pick).
fn bench_sequential_baselines(c: &mut Criterion) {
    let g = Workload::RandomNLogN.build(scale(), 42);
    let mut group = c.benchmark_group("sequential_baselines");
    group.sample_size(10);
    group.bench_function("bfs", |b| b.iter(|| seq::bfs_forest(&g)));
    group.bench_function("dfs", |b| b.iter(|| seq::dfs_forest(&g)));
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_series,
    bench_fig4_lines,
    bench_hcs_vs_sv,
    bench_sequential_baselines
);
criterion_main!(benches);
