//! Benchmarks of the future-work extensions (minimum spanning forest).

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::workloads::Workload;
use st_core::mst;
use st_graph::WeightedGraph;

fn scale() -> usize {
    // Typed env parsing: a malformed ST_BENCH_SCALE aborts the bench
    // run instead of silently reverting to the default scale.
    let cfg = st_core::RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
    1usize << cfg.bench_scale.unwrap_or(12)
}

fn bench_mst(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 5);
    let wg = WeightedGraph::with_random_weights(&g, 1_000_000, 9);
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    group.bench_function("kruskal", |b| b.iter(|| mst::kruskal(&wg)));
    for p in [1usize, 4] {
        group.bench_function(format!("boruvka_p{p}"), |b| b.iter(|| mst::boruvka(&wg, p)));
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
