//! Micro-benchmarks of the SMP substrate primitives the algorithms sit
//! on: barrier episodes, work-queue operations, lock acquisition, team
//! dispatch (spawn-per-call vs the persistent executor), and graph
//! generation throughput.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_bench::workloads::Workload;
use st_smp::barrier::BarrierToken;
use st_smp::{
    run_team, DisseminationBarrier, Executor, SenseBarrier, SpinLock, StealPolicy, TicketLock,
    WorkQueue,
};

/// Cost of one software-barrier episode at several team sizes — the
/// model's λ_B term — for both barrier constructions.
fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_episode");
    group.sample_size(10);
    for p in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("sense", p), &p, |b, &p| {
            b.iter(|| {
                let bar = SenseBarrier::new(p);
                run_team(p, |_| {
                    let token = BarrierToken::new();
                    for _ in 0..100 {
                        bar.wait(&token);
                    }
                });
            })
        });
        group.bench_with_input(BenchmarkId::new("dissemination", p), &p, |b, &p| {
            b.iter(|| {
                let bar = DisseminationBarrier::new(p);
                run_team(p, |ctx| {
                    let token = bar.token(ctx.rank());
                    for _ in 0..100 {
                        bar.wait(&token);
                    }
                });
            })
        });
    }
    group.finish();
}

/// Work-queue push/pop and steal throughput.
fn bench_work_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("work_queue");
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let q = WorkQueue::new();
            for i in 0..10_000u32 {
                q.push(i);
            }
            while q.pop().is_some() {}
        })
    });
    group.bench_function("steal_half_rounds", |b| {
        b.iter(|| {
            let q = WorkQueue::new();
            q.push_all(0..10_000u32);
            let mut buf = VecDeque::new();
            while q.steal_into(&mut buf, StealPolicy::Half) > 0 {
                buf.clear();
            }
        })
    });
    group.finish();
}

/// Lock acquisition under no contention (the per-root graft cost floor
/// of the SV lock variant).
fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks_uncontended");
    let spin = SpinLock::new(0u64);
    group.bench_function("spinlock", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                *spin.lock() += 1;
            }
        })
    });
    let ticket = TicketLock::new(0u64);
    group.bench_function("ticketlock", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                *ticket.lock() += 1;
            }
        })
    });
    group.finish();
}

/// Cost of dispatching one small team job: spawning fresh threads per
/// call (`run_team`, the seed substrate) vs handing the closure to a
/// persistent, parked team (`Executor::run`). The gap is the fixed
/// per-invocation overhead the engine removes from every algorithm call.
fn bench_executor_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_reuse");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("spawn_per_call", p), &p, |b, &p| {
            let sink = AtomicU64::new(0);
            b.iter(|| {
                run_team(p, |ctx| {
                    sink.fetch_add(ctx.rank() as u64 + 1, Ordering::Relaxed);
                });
            })
        });
        group.bench_with_input(BenchmarkId::new("persistent", p), &p, |b, &p| {
            let exec = Executor::new(p);
            let sink = AtomicU64::new(0);
            b.iter(|| {
                exec.run(|ctx| {
                    sink.fetch_add(ctx.rank() as u64 + 1, Ordering::Relaxed);
                });
            })
        });
    }
    group.finish();
}

/// Generator throughput for the heavier experiment inputs.
fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for w in [
        Workload::RandomM15,
        Workload::Ad3,
        Workload::GeoFlat,
        Workload::Mesh2D60,
    ] {
        group.bench_function(w.id(), |b| b.iter(|| w.build(1 << 12, 3)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_barrier,
    bench_work_queue,
    bench_locks,
    bench_executor_reuse,
    bench_generators
);
criterion_main!(benches);
