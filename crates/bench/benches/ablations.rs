// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Ablation benchmarks for the design choices called out in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use st_bench::workloads::Workload;
use st_core::bader_cong::{BaderCong, Config};
use st_core::sv::{self, GraftVariant, SvConfig};
use st_core::traversal::TraversalConfig;
use st_graph::preprocess::eliminate_degree2;
use st_smp::StealPolicy;

fn scale() -> usize {
    // Typed env parsing: a malformed ST_BENCH_SCALE aborts the bench
    // run instead of silently reverting to the default scale.
    let cfg = st_core::RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
    1usize << cfg.bench_scale.unwrap_or(12)
}

/// `ablate_steal`: steal-half vs steal-one vs fixed chunks.
fn ablate_steal(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_steal");
    group.sample_size(10);
    for (name, policy) in [
        ("half", StealPolicy::Half),
        ("one", StealPolicy::One),
        ("chunk16", StealPolicy::Chunk(16)),
    ] {
        let cfg = Config {
            traversal: TraversalConfig {
                steal_policy: policy,
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| BaderCong::new(cfg.clone()).spanning_forest(&g, 4))
        });
    }
    group.finish();
}

/// `ablate_stub`: stub tree length O(p) (the paper) vs longer stubs.
fn ablate_stub(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_stub");
    group.sample_size(10);
    for factor in [1usize, 2, 8, 32] {
        let cfg = Config {
            stub_factor: factor,
            ..Config::default()
        };
        group.bench_with_input(BenchmarkId::new("factor", factor), &cfg, |b, cfg| {
            b.iter(|| BaderCong::new(cfg.clone()).spanning_forest(&g, 4))
        });
    }
    group.finish();
}

/// `lockvariant`: SV election grafting vs per-root locks (CLAIM-LOCK).
fn ablate_sv_grafting(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_sv_grafting");
    group.sample_size(10);
    for (name, variant) in [
        ("election", GraftVariant::Election),
        ("lock", GraftVariant::Lock),
    ] {
        let cfg = SvConfig {
            variant,
            ..SvConfig::default()
        };
        group.bench_function(name, |b| b.iter(|| sv::spanning_forest(&g, 4, cfg)));
    }
    group.finish();
}

/// `ablate_deg2`: degree-2 chain elimination on a chain-heavy input.
fn ablate_deg2(c: &mut Criterion) {
    // A dense core with long chains hanging off it: the configuration
    // the preprocessing targets.
    let n = scale();
    let g = {
        let mut el = st_graph::EdgeList::new(n);
        let core = 32.min(n as u32);
        for u in 0..core {
            for v in (u + 1)..core {
                el.push(u, v);
            }
        }
        for v in core..n as u32 {
            // Chains of length 64 rooted round-robin on the core.
            let prev = if (v - core) % 64 == 0 {
                (v - core) % core
            } else {
                v - 1
            };
            el.push(prev, v);
        }
        st_graph::CsrGraph::from_edge_list(&el)
    };
    let mut group = c.benchmark_group("ablate_deg2");
    group.sample_size(10);
    for (name, pre) in [("off", false), ("on", true)] {
        let cfg = Config {
            deg2_preprocess: pre,
            ..Config::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| BaderCong::new(cfg.clone()).spanning_forest(&g, 4))
        });
    }
    // The reduction step alone, for attribution.
    group.bench_function("reduction_only", |b| b.iter(|| eliminate_degree2(&g)));
    group.finish();
}

/// `ablate_chunk`: owner dequeue batch size (1 = the paper's protocol).
fn ablate_chunk(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_chunk");
    group.sample_size(10);
    for batch in [1usize, 4, 16, 64] {
        let cfg = Config {
            traversal: TraversalConfig {
                local_batch: batch,
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        group.bench_with_input(BenchmarkId::new("batch", batch), &cfg, |b, cfg| {
            b.iter(|| BaderCong::new(cfg.clone()).spanning_forest(&g, 4))
        });
    }
    group.finish();
}

/// `ablate_frontier`: the two-level work-stealing frontier. Sweeps the
/// publication threshold from the paper's publish-everything protocol
/// (threshold 1) to publish-never (sleeper-driven only), plus the
/// sleeper-donation knob. The committed baseline numbers live in
/// BENCH_traversal.json (see the `traversal-frontier` bin).
fn ablate_frontier(c: &mut Criterion) {
    let g = Workload::RandomM15.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_frontier");
    group.sample_size(10);
    for (name, threshold) in [
        ("paper1", 1usize),
        ("t8", 8),
        ("t64", 64),
        ("never", usize::MAX),
    ] {
        let cfg = Config {
            traversal: TraversalConfig {
                publish_threshold: threshold,
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| BaderCong::new(cfg.clone()).spanning_forest(&g, 4))
        });
    }
    let no_donate = Config {
        traversal: TraversalConfig {
            publish_on_sleepers: false,
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    group.bench_function("t64_no_donate", |b| {
        b.iter(|| BaderCong::new(no_donate.clone()).spanning_forest(&g, 4))
    });
    group.finish();
}

/// `ablate_driver`: the paper's per-component round driver vs the
/// multi-root concurrent extension, on a many-component input (2D60)
/// and a single-component input (torus).
fn ablate_driver(c: &mut Criterion) {
    use st_core::multiroot::spanning_forest_multiroot;
    let many = Workload::Mesh2D60.build(scale(), 7);
    let one = Workload::TorusRowMajor.build(scale(), 7);
    let mut group = c.benchmark_group("ablate_driver");
    group.sample_size(10);
    group.bench_function("rounds_mesh2d60", |b| {
        b.iter(|| BaderCong::with_defaults().spanning_forest(&many, 4))
    });
    group.bench_function("multiroot_mesh2d60", |b| {
        b.iter(|| spanning_forest_multiroot(&many, 4, TraversalConfig::default()))
    });
    group.bench_function("rounds_torus", |b| {
        b.iter(|| BaderCong::with_defaults().spanning_forest(&one, 4))
    });
    group.bench_function("multiroot_torus", |b| {
        b.iter(|| spanning_forest_multiroot(&one, 4, TraversalConfig::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_steal,
    ablate_stub,
    ablate_sv_grafting,
    ablate_deg2,
    ablate_chunk,
    ablate_frontier,
    ablate_driver
);
criterion_main!(benches);
