//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the two shapes this workspace uses:
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * fieldless enums → JSON strings holding the variant name.
//!
//! Anything else (tuple structs, generics, data-carrying variants,
//! `#[serde(...)]` attributes) is rejected with a compile error naming
//! the limitation. Written against raw `proc_macro` token trees because
//! the offline container has no `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Shape {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + fieldless variant names.
    Enum(String, Vec<String>),
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (type `{name}`)"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "vendored serde_derive supports only braced bodies (type `{name}`), found {other:?}"
            ))
        }
    };

    if kind == "struct" {
        Ok(Shape::Struct(name, parse_struct_fields(body)?))
    } else {
        Ok(Shape::Enum(name, parse_enum_variants(body)?))
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        match tokens.get(*i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let text = g.stream().to_string();
                if text.starts_with("serde") {
                    return Err(format!(
                        "vendored serde_derive does not support #[serde(...)] attributes: {text}"
                    ));
                }
                *i += 2;
            }
            other => return Err(format!("malformed attribute, found {other:?}")),
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // pub(crate), pub(super), ...
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                "vendored serde_derive supports only named fields; after `{field}` found {other:?}"
            ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        // Consume the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            other => {
                return Err(format!(
                    "vendored serde_derive supports only fieldless enum variants; after `{variant}` found {other:?}"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!("m.insert({f:?}.to_string(), serde::Serialize::to_value(&self.{f}));")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut m = std::collections::BTreeMap::new();\n\
                         {inserts}\n\
                         serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_string()),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             m.get({f:?}).unwrap_or(&serde::Value::Null))\
                             .map_err(|e| serde::DeError::msg(\
                                 format!(\"in field `{f}` of `{name}`: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Object(m) => Ok(Self {{ {builds} }}),\n\
                             other => Err(serde::DeError::msg(\
                                 format!(\"expected object for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::DeError::msg(\
                                     format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             other => Err(serde::DeError::msg(\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
