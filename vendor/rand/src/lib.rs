//! Offline vendored stand-in for the `rand` crate.
//!
//! The reproduction container has no network access and no crates.io
//! cache, so the workspace vendors the small slice of `rand`'s API it
//! actually uses: seedable generators (`SmallRng`, `StdRng`), the `Rng`
//! convenience methods (`gen`, `gen_range`, `gen_bool`), and
//! `SliceRandom::shuffle`. Both generator types are xoshiro256++ with a
//! SplitMix64 seeding routine, so streams are deterministic for a given
//! seed and stable across platforms — which is all the workspace relies
//! on (graph generators and victim selection are seeded explicitly
//! everywhere; no entropy source is needed or provided).
//!
//! Stream values intentionally do **not** match upstream `rand`; nothing
//! in the workspace depends on upstream byte streams, only on per-seed
//! determinism.

#![warn(missing_docs)]

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion
    /// (the upstream convenience everyone in this workspace uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), the standard construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `0..span` (`span > 0`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire-style widening-multiply rejection sampling.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform value of `T` (integers over their full domain, floats in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ core shared by both generator types.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    macro_rules! wrapper_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                type Seed = [u8; 32];
                fn from_seed(seed: [u8; 32]) -> Self {
                    Self(Xoshiro256::from_seed_bytes(seed))
                }
            }
        };
    }

    wrapper_rng!(
        /// Small, fast generator (upstream: xoshiro256++; here the same
        /// family).
        SmallRng
    );
    wrapper_rng!(
        /// The "standard" generator. Upstream this is ChaCha12; the
        /// vendored stand-in uses xoshiro256++ — cryptographic quality is
        /// not needed anywhere in this workspace, only per-seed
        /// determinism, which this provides.
        StdRng
    );
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of upstream's `SliceRandom` used
    /// here).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1u32..=6);
            assert!((1..=6).contains(&y));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(5);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
