//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timing loop instead of criterion's statistical engine.
//!
//! Reported numbers are median / min / max over `sample_size` samples
//! after one warm-up run. Good enough to compare configurations on one
//! machine; not a statistics package.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies CLI configuration. The stand-in accepts and ignores the
    /// arguments cargo-bench passes (`--bench`, filters, ...).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_samples(id, 10, f);
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Accepts both `&str`-like names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Renders the identifier as the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_samples(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.full);
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot path.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the stand-in runs a single
    /// iteration per sample rather than criterion's batched loops).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let median = times[times.len() / 2];
    eprintln!(
        "  {label}: median {median:?} (min {:?}, max {:?}, n={})",
        times[0],
        times[times.len() - 1],
        times.len()
    );
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
