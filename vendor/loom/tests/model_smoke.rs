//! Self-tests for the vendored model checker: it must pass correct
//! protocols and, crucially, *fail* broken ones (a checker that cannot
//! find a seeded bug proves nothing).

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

#[test]
fn mutex_protects_counter() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                loom::thread::spawn(move || {
                    let mut g = m.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
    });
}

#[test]
#[should_panic(expected = "loom: model failed")]
fn lost_update_is_found() {
    // Unsynchronized read-modify-write: some interleaving loses an
    // increment, and the checker must find it.
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn abba_deadlock_is_found() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        let _ = t.join();
    });
}

#[test]
fn timed_wait_explores_both_timeout_and_notify() {
    // The waiter must terminate in every schedule: either the notify
    // lands, or the scheduler fires the timeout.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let mut timed_out_once = false;
        while !*g {
            if cv
                .wait_for(&mut g, std::time::Duration::from_millis(1))
                .timed_out()
            {
                timed_out_once = true;
                // Re-check the predicate and keep waiting; the notifier
                // is guaranteed to run eventually.
            }
        }
        let _ = timed_out_once;
        drop(g);
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "loom: model failed")]
fn lost_wakeup_is_found() {
    // Classic lost-wakeup: the waiter checks the flag, is preempted,
    // the setter sets + notifies, then the waiter (untimed) sleeps
    // forever. The checker must flag the resulting deadlock.
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (f2, p2) = (Arc::clone(&flag), Arc::clone(&pair));
        let t = loom::thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
            p2.1.notify_all();
        });
        // Broken protocol: predicate checked outside the mutex.
        if !flag.load(Ordering::SeqCst) {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            cv.wait(&mut g);
        }
        t.join().unwrap();
    });
}

#[test]
fn spin_with_yield_makes_progress() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
}
