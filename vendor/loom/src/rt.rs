//! The execution scheduler: runs model threads one at a time and
//! explores the tree of scheduling decisions depth-first.
//!
//! Every synchronization operation (atomic access, mutex acquire and
//! release, condvar wait/notify, spawn, join, yield) is a *schedule
//! point*: the calling thread stops and the scheduler picks which thread
//! runs next. Since exactly one model thread executes between schedule
//! points, every explored execution is sequentially consistent; the
//! decision log is replayed and advanced across iterations until every
//! schedule allowed by the preemption bound has been visited.
//!
//! Model threads are real OS threads parked on one condvar; this is the
//! classic systematic-concurrency-testing construction (CHESS-style
//! iterative context bounding) rather than loom's generator-based
//! runtime, but the exploration contract — exhaustive within the bound,
//! deterministic replay of a failing schedule — is the same.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// Panic payload used to unwind model threads once an execution has
/// failed (assertion, deadlock, or budget exhaustion) so the iteration
/// can tear down without hanging on dead synchronization state.
pub(crate) struct Teardown;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    /// Voluntarily yielded (spin backoff); scheduled only when no plain
    /// runnable thread exists, so spinners cannot starve their releaser.
    Yielded,
    BlockedMutex(usize),
    BlockedCondvar {
        cv: usize,
        timed: bool,
    },
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct MutexState {
    held_by: Option<usize>,
}

struct Sched {
    threads: Vec<ThreadState>,
    /// Per thread: the last condvar wake was the modeled timeout firing.
    timed_out: Vec<bool>,
    active: usize,
    mutexes: Vec<MutexState>,
    condvars: usize,
    /// Planned choices (indices into the option list) for this
    /// iteration's decision points, from the previous iteration's DFS
    /// advance.
    prefix: Vec<usize>,
    cursor: usize,
    /// `(chosen index, number of options)` per decision point actually
    /// reached this iteration.
    decisions: Vec<(usize, usize)>,
    preemptions: u32,
    steps: u64,
    unfinished: usize,
}

pub(crate) struct Execution {
    sched: OsMutex<Sched>,
    cv: OsCondvar,
    failing: AtomicBool,
    failure: OsMutex<Option<String>>,
    max_preemptions: u32,
    max_steps: u64,
}

/// Option encoding: `tid * 2` runs thread `tid`; `tid * 2 + 1` fires the
/// timeout of a thread blocked in a timed condvar wait.
const RUN: usize = 0;
const TIMEOUT: usize = 1;

impl Execution {
    fn new(prefix: Vec<usize>, max_preemptions: u32, max_steps: u64) -> Self {
        Self {
            sched: OsMutex::new(Sched {
                threads: vec![ThreadState::Runnable],
                timed_out: vec![false],
                active: 0,
                mutexes: Vec::new(),
                condvars: 0,
                prefix,
                cursor: 0,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                unfinished: 1,
            }),
            cv: OsCondvar::new(),
            failing: AtomicBool::new(false),
            failure: OsMutex::new(None),
            max_preemptions,
            max_steps,
        }
    }

    /// Entry guard for every primitive: once the execution is failing,
    /// threads unwind at their next schedule point (`Teardown`), and
    /// operations reached *during* that unwind (guard drops) become
    /// no-ops so teardown never double-panics. Returns `true` when the
    /// caller should skip the operation entirely.
    fn teardown_guard(&self) -> bool {
        if self.failing.load(Ordering::Relaxed) {
            if std::thread::panicking() {
                return true;
            }
            std::panic::panic_any(Teardown);
        }
        false
    }

    /// Records the first failure, marks every live thread runnable (so
    /// OS-blocked threads wake and unwind), and wakes the world.
    fn fail_locked(&self, s: &mut Sched, msg: String) {
        if self.failure.lock().unwrap().is_none() {
            *self.failure.lock().unwrap() = Some(msg);
        }
        self.failing.store(true, Ordering::Relaxed);
        for t in &mut s.threads {
            if *t != ThreadState::Finished {
                *t = ThreadState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    pub(crate) fn record_failure(&self, msg: String) {
        let mut s = self.sched.lock().unwrap();
        self.fail_locked(&mut s, msg);
    }

    /// Picks the next thread to run. Called with the scheduler locked by
    /// the thread leaving the processor (`me`), after `me`'s state has
    /// been updated.
    fn schedule(&self, s: &mut Sched, me: usize) {
        if self.failing.load(Ordering::Relaxed) {
            self.cv.notify_all();
            return;
        }
        s.steps += 1;
        if s.steps > self.max_steps {
            let states: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .map(|(t, st)| format!("t{t}:{st:?}"))
                .collect();
            self.fail_locked(
                s,
                format!(
                    "livelock: exceeded {} schedule points in one execution \
                     (set LOOM_MAX_STEPS to raise); threads: [{}]",
                    self.max_steps,
                    states.join(", ")
                ),
            );
            return;
        }
        if s.unfinished == 0 {
            self.cv.notify_all();
            return;
        }
        let me_runnable = s.threads.get(me) == Some(&ThreadState::Runnable);
        let budget_left = s.preemptions < self.max_preemptions;
        // A thread that still has the processor keeps it for free;
        // handing it to anyone else while `me` could continue is a
        // preemption and counts against the bound.
        if me_runnable && !budget_left {
            s.active = me;
            self.cv.notify_all();
            return;
        }
        let mut opts: Vec<usize> = Vec::new();
        if me_runnable {
            opts.push(me * 2 + RUN);
        }
        for (t, st) in s.threads.iter().enumerate() {
            if t != me && *st == ThreadState::Runnable {
                opts.push(t * 2 + RUN);
            }
        }
        if opts.is_empty() {
            // Only yielded threads left among the immediately runnable:
            // let spinners re-check. `yield_now` declares the caller
            // cannot progress until someone else moves, so the thread
            // that just yielded is NOT an option while another yielded
            // thread exists — otherwise decision 0 would re-pick the
            // spinner forever and the first DFS path would livelock
            // without ever running the thread it spins on. A lone
            // yielder keeps the processor (spurious-wakeup re-check).
            for (t, st) in s.threads.iter().enumerate() {
                if t != me && *st == ThreadState::Yielded {
                    opts.push(t * 2 + RUN);
                }
            }
            if opts.is_empty() && s.threads.get(me) == Some(&ThreadState::Yielded) {
                opts.push(me * 2 + RUN);
            }
        }
        // A timed condvar wait can be woken by its timeout firing; this
        // is how timeout-versus-notify races are explored. Firing a
        // timeout while another thread could run instead is charged as a
        // preemption — otherwise a timeout/re-wait loop makes the
        // schedule tree infinitely deep — so it is only *offered* while
        // budget remains, or as the sole escape when nothing else can
        // run (the lone-sleeper case, which costs nothing).
        let had_run_option = !opts.is_empty();
        if budget_left || opts.is_empty() {
            for (t, st) in s.threads.iter().enumerate() {
                if matches!(*st, ThreadState::BlockedCondvar { timed: true, .. }) {
                    opts.push(t * 2 + TIMEOUT);
                }
            }
        }
        if opts.is_empty() {
            let states: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .map(|(t, st)| format!("t{t}:{st:?}"))
                .collect();
            self.fail_locked(s, format!("deadlock: [{}]", states.join(", ")));
            return;
        }
        let chosen = if opts.len() == 1 {
            opts[0]
        } else {
            let idx = if s.cursor < s.prefix.len() {
                s.prefix[s.cursor]
            } else {
                0
            };
            assert!(
                idx < opts.len(),
                "loom: replay diverged (prefix index {idx} of {} options)",
                opts.len()
            );
            s.cursor += 1;
            s.decisions.push((idx, opts.len()));
            opts[idx]
        };
        let tid = chosen / 2;
        if chosen % 2 == TIMEOUT {
            s.threads[tid] = ThreadState::Runnable;
            s.timed_out[tid] = true;
            if had_run_option {
                s.preemptions += 1;
            }
        } else if me_runnable && tid != me {
            s.preemptions += 1;
        }
        if s.threads[tid] == ThreadState::Yielded {
            s.threads[tid] = ThreadState::Runnable;
        }
        s.active = tid;
        self.cv.notify_all();
    }

    /// Blocks the OS thread until the scheduler hands `me` the
    /// processor (or the execution starts failing).
    fn wait_for_turn(&self, me: usize) {
        let mut s = self.sched.lock().unwrap();
        while !(s.active == me && s.threads[me] == ThreadState::Runnable) {
            if self.failing.load(Ordering::Relaxed) {
                return;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// A plain schedule point: `me` stays runnable and may or may not
    /// keep the processor.
    fn switch(&self, me: usize) {
        {
            let mut s = self.sched.lock().unwrap();
            self.schedule(&mut s, me);
        }
        self.wait_for_turn(me);
        // If the world failed while we were parked, unwind now.
        let _ = self.teardown_guard();
    }

    fn finish_thread(&self, me: usize) {
        let mut s = self.sched.lock().unwrap();
        s.threads[me] = ThreadState::Finished;
        s.unfinished -= 1;
        let waiters: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == ThreadState::BlockedJoin(me))
            .map(|(t, _)| t)
            .collect();
        for t in waiters {
            s.threads[t] = ThreadState::Runnable;
        }
        self.schedule(&mut s, me);
    }
}

// ---------------------------------------------------------------------
// Primitive hooks (called from sync/thread/hint modules)
// ---------------------------------------------------------------------

/// Schedule point before an atomic operation.
pub(crate) fn step() {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return;
    }
    exec.switch(me);
}

pub(crate) fn yield_now() {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return;
    }
    {
        let mut s = exec.sched.lock().unwrap();
        s.threads[me] = ThreadState::Yielded;
        exec.schedule(&mut s, me);
    }
    exec.wait_for_turn(me);
    let _ = exec.teardown_guard();
}

pub(crate) fn mutex_create() -> usize {
    let (exec, _) = current();
    let mut s = exec.sched.lock().unwrap();
    s.mutexes.push(MutexState { held_by: None });
    s.mutexes.len() - 1
}

pub(crate) fn mutex_lock(mid: usize) {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return;
    }
    exec.switch(me);
    mutex_lock_reacquire(&exec, me, mid);
}

/// The acquire loop, without the leading schedule point (used both by
/// `mutex_lock` and by condvar wakeups reacquiring the mutex).
fn mutex_lock_reacquire(exec: &Arc<Execution>, me: usize, mid: usize) {
    loop {
        if exec.teardown_guard() {
            return;
        }
        {
            let mut s = exec.sched.lock().unwrap();
            if s.mutexes[mid].held_by.is_none() {
                s.mutexes[mid].held_by = Some(me);
                return;
            }
            s.threads[me] = ThreadState::BlockedMutex(mid);
            exec.schedule(&mut s, me);
        }
        exec.wait_for_turn(me);
    }
}

pub(crate) fn mutex_try_lock(mid: usize) -> bool {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return true;
    }
    exec.switch(me);
    let mut s = exec.sched.lock().unwrap();
    if s.mutexes[mid].held_by.is_none() {
        s.mutexes[mid].held_by = Some(me);
        true
    } else {
        false
    }
}

pub(crate) fn mutex_unlock(mid: usize) {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return;
    }
    {
        let mut s = exec.sched.lock().unwrap();
        debug_assert_eq!(s.mutexes[mid].held_by, Some(me), "unlock by non-holder");
        s.mutexes[mid].held_by = None;
        for st in &mut s.threads {
            if *st == ThreadState::BlockedMutex(mid) {
                *st = ThreadState::Runnable;
            }
        }
        exec.schedule(&mut s, me);
    }
    exec.wait_for_turn(me);
    let _ = exec.teardown_guard();
}

pub(crate) fn condvar_create() -> usize {
    let (exec, _) = current();
    let mut s = exec.sched.lock().unwrap();
    s.condvars += 1;
    s.condvars - 1
}

/// Releases `mid`, blocks on condvar `cvid`, reacquires `mid`. With
/// `timed`, the scheduler may wake the wait as a timeout at any decision
/// point, which is how every interleaving of "timeout fires" versus
/// "notify arrives first" gets explored. Returns whether the wake was
/// the timeout.
pub(crate) fn condvar_wait(cvid: usize, mid: usize, timed: bool) -> bool {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return true;
    }
    {
        let mut s = exec.sched.lock().unwrap();
        debug_assert_eq!(s.mutexes[mid].held_by, Some(me), "wait without the lock");
        s.mutexes[mid].held_by = None;
        for st in &mut s.threads {
            if *st == ThreadState::BlockedMutex(mid) {
                *st = ThreadState::Runnable;
            }
        }
        s.timed_out[me] = false;
        s.threads[me] = ThreadState::BlockedCondvar { cv: cvid, timed };
        exec.schedule(&mut s, me);
    }
    exec.wait_for_turn(me);
    let timed_out = {
        let s = exec.sched.lock().unwrap();
        s.timed_out[me]
    };
    mutex_lock_reacquire(&exec, me, mid);
    timed_out
}

pub(crate) fn condvar_notify(cvid: usize, all: bool) {
    let (exec, me) = current();
    if exec.teardown_guard() {
        return;
    }
    {
        let mut s = exec.sched.lock().unwrap();
        let mut woken = 0usize;
        for t in 0..s.threads.len() {
            if let ThreadState::BlockedCondvar { cv, .. } = s.threads[t] {
                if cv == cvid && (all || woken == 0) {
                    s.threads[t] = ThreadState::Runnable;
                    s.timed_out[t] = false;
                    woken += 1;
                }
            }
        }
        exec.schedule(&mut s, me);
    }
    exec.wait_for_turn(me);
    let _ = exec.teardown_guard();
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

/// Handle to a spawned model thread (see [`crate::thread::spawn`]).
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<OsMutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result, like
    /// `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, me) = current();
        loop {
            if exec.teardown_guard() {
                break;
            }
            {
                let mut s = exec.sched.lock().unwrap();
                if s.threads[self.tid] == ThreadState::Finished {
                    break;
                }
                s.threads[me] = ThreadState::BlockedJoin(self.tid);
                exec.schedule(&mut s, me);
            }
            exec.wait_for_turn(me);
        }
        self.result
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| Err(Box::new("loom: thread torn down before completing")))
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = current();
    let result: Arc<OsMutex<Option<std::thread::Result<T>>>> = Arc::new(OsMutex::new(None));
    if exec.teardown_guard() {
        // Teardown while a drop handler spawns (never in practice):
        // return a handle whose join reports the teardown.
        return JoinHandle { tid: me, result };
    }
    let tid = {
        let mut s = exec.sched.lock().unwrap();
        s.threads.push(ThreadState::Runnable);
        s.timed_out.push(false);
        s.unfinished += 1;
        s.threads.len() - 1
    };
    let exec2 = Arc::clone(&exec);
    let result2 = Arc::clone(&result);
    std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
            exec2.wait_for_turn(tid);
            let r = catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = &r {
                if !p.is::<Teardown>() {
                    exec2.record_failure(format!(
                        "model thread {tid} panicked: {}",
                        panic_message(p.as_ref())
                    ));
                }
            }
            *result2.lock().unwrap() = Some(r);
            exec2.finish_thread(tid);
        })
        .expect("spawn loom model thread");
    // Spawning is itself a schedule point: the child may run first.
    exec.switch(me);
    JoinHandle { tid, result }
}

// ---------------------------------------------------------------------
// The model loop
// ---------------------------------------------------------------------

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Explores every schedule of `f` allowed by the preemption bound
/// (`LOOM_MAX_PREEMPTIONS`, default 2), panicking on the first failing
/// execution with the schedule prefix that reproduces it.
///
/// Iterations are capped by `LOOM_MAX_ITERATIONS` (default 500 000) and
/// each execution by `LOOM_MAX_STEPS` schedule points (default 50 000);
/// exceeding either is an error, not a silent pass.
pub fn model<F: Fn()>(f: F) {
    let max_preemptions = env_u64("LOOM_MAX_PREEMPTIONS", 2) as u32;
    let max_steps = env_u64("LOOM_MAX_STEPS", 50_000);
    let max_iterations = env_u64("LOOM_MAX_ITERATIONS", 500_000);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exploration exceeded {max_iterations} executions; \
             raise LOOM_MAX_ITERATIONS or simplify the model"
        );
        let exec = Arc::new(Execution::new(prefix.clone(), max_preemptions, max_steps));
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        let r = catch_unwind(AssertUnwindSafe(&f));
        if let Err(p) = &r {
            if !p.is::<Teardown>() {
                exec.record_failure(format!(
                    "main model thread panicked: {}",
                    panic_message(p.as_ref())
                ));
            }
        }
        exec.finish_thread(0);
        // Wait for every spawned thread to finish (they keep scheduling
        // among themselves, or unwind via teardown on failure).
        {
            let mut s = exec.sched.lock().unwrap();
            while s.unfinished > 0 {
                s = exec.cv.wait(s).unwrap();
            }
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        if let Some(msg) = exec.failure.lock().unwrap().take() {
            let s = exec.sched.lock().unwrap();
            panic!(
                "loom: model failed (execution {iterations}): {msg}\n\
                 replay prefix: {:?}",
                s.decisions.iter().map(|d| d.0).collect::<Vec<_>>()
            );
        }
        let decisions = {
            let s = exec.sched.lock().unwrap();
            s.decisions.clone()
        };
        match next_prefix(&decisions) {
            Some(p) => prefix = p,
            None => break,
        }
    }
}

/// DFS advance: bump the deepest decision that still has unexplored
/// options, truncating everything after it.
fn next_prefix(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let (chosen, options) = decisions[i];
        if chosen + 1 < options {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.0).collect();
            p.push(chosen + 1);
            return Some(p);
        }
    }
    None
}
