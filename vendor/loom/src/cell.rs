//! Mirrors the cell types the workspace uses. The real loom instruments
//! `UnsafeCell` accesses to detect concurrent aliasing; this stand-in is
//! a passthrough — aliasing discipline is checked by Miri in CI instead.

/// Passthrough [`std::cell::UnsafeCell`] with loom's access API shape.
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    /// Creates a new cell holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    /// Immutable access to the contents.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent mutable access, as for
    /// [`std::cell::UnsafeCell::get`].
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access to the contents.
    ///
    /// # Safety
    /// Caller must guarantee exclusive access, as for
    /// [`std::cell::UnsafeCell::get`].
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    /// Raw pointer to the contents (std-compatible escape hatch).
    pub fn get(&self) -> *mut T {
        self.0.get()
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

// Safety: same bounds as std's UnsafeCell usage in Sync containers —
// the wrapper adds no state beyond the cell itself.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}
