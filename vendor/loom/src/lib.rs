//! Offline vendored stand-in for [loom](https://github.com/tokio-rs/loom),
//! covering the slice of its API this workspace uses.
//!
//! Like the other `vendor/` crates, this is a from-scratch minimal
//! implementation so the workspace builds with `CARGO_NET_OFFLINE=true`.
//! It is a *systematic concurrency tester*: [`model`] runs the closure
//! repeatedly, serializing all model threads through one scheduler and
//! exploring every interleaving of schedule points depth-first, bounded
//! by a preemption budget (CHESS-style iterative context bounding —
//! `LOOM_MAX_PREEMPTIONS`, default 2).
//!
//! ## Fidelity and limits
//!
//! - **Exhaustive within the bound.** Every sequentially-consistent
//!   interleaving with at most N preemptions is visited; most real
//!   concurrency bugs manifest within 2 preemptions.
//! - **Sequentially consistent only.** Unlike real loom, relaxed/acquire
//!   /release effects are *not* simulated — every atomic op behaves
//!   SeqCst. Weak-memory bugs are instead covered by the Miri and
//!   ThreadSanitizer CI jobs; this crate verifies protocol logic
//!   (mutual exclusion, lost wakeups, termination, lifecycle) under all
//!   bounded thread orders.
//! - **Timeouts are scheduler choices.** A timed condvar wait may be
//!   woken as a timeout at any decision point, so timeout-versus-notify
//!   races are part of the explored space and a lone sleeper can always
//!   make progress.
//! - **Deadlock and livelock detection.** An execution with no runnable
//!   or timeout-wakeable thread fails as a deadlock; one exceeding
//!   `LOOM_MAX_STEPS` schedule points fails as a livelock.
//!
//! On failure, [`model`] panics with the failing execution's decision
//! prefix so the schedule can be reasoned about (replay is
//! deterministic: the primitives here introduce no time or randomness).

#![warn(missing_docs)]

mod rt;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::model;
