//! Model-thread spawning and yielding, mirroring the `std::thread`
//! surface the workspace uses.

pub use crate::rt::JoinHandle;

/// Spawns a model thread. Signature-compatible with
/// [`std::thread::spawn`]; the returned handle's `join` yields a
/// `std::thread::Result<T>` just like std's.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    crate::rt::spawn(f)
}

/// Model-aware [`std::thread::yield_now`]: a yield-class schedule point
/// that deprioritizes the caller until no other thread can run.
pub fn yield_now() {
    crate::rt::yield_now();
}

/// Minimal stand-in for `std::thread::Builder` so executor code that
/// names its workers compiles unchanged under the model.
#[derive(Debug, Default)]
pub struct Builder {
    _name: Option<String>,
}

impl Builder {
    /// Creates a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts (and ignores) a thread name — model threads are named by
    /// their scheduler id.
    pub fn name(mut self, name: String) -> Self {
        self._name = Some(name);
        self
    }

    /// Spawns the thread; infallible in the model but keeps std's
    /// `io::Result` shape.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(crate::rt::spawn(f))
    }
}
