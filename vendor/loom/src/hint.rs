//! Mirrors `std::hint` for the spin-loop hint: under the model a spin
//! hint is a yield-class schedule point, so spinners cannot starve the
//! thread they are waiting on.

/// Model-aware replacement for [`std::hint::spin_loop`].
pub fn spin_loop() {
    crate::rt::yield_now();
}
