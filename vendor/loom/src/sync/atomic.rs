//! Model-checked atomics. Every operation is a schedule point; the
//! stored value lives in the matching `std` atomic accessed SeqCst, so
//! all explored executions are sequentially consistent (the requested
//! `Ordering` is accepted for API compatibility but not weakened — see
//! the crate docs for why weak-memory checking is delegated to
//! Miri/TSan).

pub use std::sync::atomic::Ordering;

use std::sync::atomic::Ordering::SeqCst;

macro_rules! atomic_common {
    ($name:ident, $std:ident, $ty:ty) => {
        impl $name {
            /// Creates a new atomic (const, like std's).
            pub const fn new(v: $ty) -> Self {
                Self(std::sync::atomic::$std::new(v))
            }

            /// Atomic load (schedule point).
            pub fn load(&self, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.load(SeqCst)
            }

            /// Atomic store (schedule point).
            pub fn store(&self, val: $ty, _order: Ordering) {
                crate::rt::step();
                self.0.store(val, SeqCst)
            }

            /// Atomic swap (schedule point).
            pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.swap(val, SeqCst)
            }

            /// Atomic compare-and-exchange (schedule point).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                crate::rt::step();
                self.0.compare_exchange(current, new, SeqCst, SeqCst)
            }

            /// Weak compare-and-exchange. Modeled as the strong form —
            /// spurious failure is a superset behavior callers already
            /// loop over, and the strong form keeps the explored state
            /// space finite.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Mutable access without synchronization (`&mut self`).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.0.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $ty {
                self.0.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // No schedule point: Debug must not perturb exploration.
                self.0.load(SeqCst).fmt(f)
            }
        }
    };
}

macro_rules! atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-checked integer atomic.
        pub struct $name(std::sync::atomic::$std);

        atomic_common!($name, $std, $ty);

        impl $name {
            /// Atomic add, returning the previous value (schedule point).
            pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.fetch_add(val, SeqCst)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.fetch_sub(val, SeqCst)
            }

            /// Atomic bitwise-and, returning the previous value.
            pub fn fetch_and(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.fetch_and(val, SeqCst)
            }

            /// Atomic bitwise-or, returning the previous value.
            pub fn fetch_or(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.fetch_or(val, SeqCst)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                crate::rt::step();
                self.0.fetch_max(val, SeqCst)
            }
        }
    };
}

/// Model-checked boolean atomic.
pub struct AtomicBool(std::sync::atomic::AtomicBool);

atomic_common!(AtomicBool, AtomicBool, bool);

impl AtomicBool {
    /// Atomic bitwise-and, returning the previous value.
    pub fn fetch_and(&self, val: bool, _order: Ordering) -> bool {
        crate::rt::step();
        self.0.fetch_and(val, SeqCst)
    }

    /// Atomic bitwise-or, returning the previous value.
    pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
        crate::rt::step();
        self.0.fetch_or(val, SeqCst)
    }
}

atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicU8, AtomicU8, u8);
atomic_int!(AtomicU32, AtomicU32, u32);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicI64, AtomicI64, i64);
