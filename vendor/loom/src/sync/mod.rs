//! Model-checked synchronization primitives, shaped after the
//! `parking_lot` slice this workspace uses (no poisoning, guard-based
//! `Condvar::wait_for` returning a [`WaitTimeoutResult`]).

pub mod atomic;

pub use std::sync::Arc;

use std::time::Duration;

/// Model-checked mutex with the vendored-`parking_lot` API shape.
///
/// Mutual exclusion is enforced by the scheduler: `lock` is a schedule
/// point and blocks the model thread while another holds the lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// Safety: the scheduler serializes all access to `data` behind `id`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex. Must be called inside [`crate::model`] (ids are
    /// per-execution), which is where all workspace mutexes are built.
    pub fn new(value: T) -> Self {
        Self {
            id: crate::rt::mutex_create(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking the model thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        crate::rt::mutex_lock(self.id);
        MutexGuard { lock: self }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if crate::rt::mutex_try_lock(self.id) {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// RAII guard for [`Mutex`]; releasing it is a schedule point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the scheduler granted this thread the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the scheduler granted this thread the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        crate::rt::mutex_unlock(self.lock.id);
    }
}

/// Whether a timed wait returned because its timeout fired.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-checked condition variable (parking_lot shape).
///
/// Timed waits are woken either by a notification or by the scheduler
/// electing to fire the timeout — both orders are explored.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a condvar (inside [`crate::model`], like [`Mutex::new`]).
    pub fn new() -> Self {
        Self {
            id: crate::rt::condvar_create(),
        }
    }

    /// Blocks until notified, releasing `guard`'s mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        crate::rt::condvar_wait(self.id, guard.lock.id, false);
    }

    /// Blocks until notified or until the scheduler fires the modeled
    /// timeout; the `Duration` itself is ignored (model time is
    /// scheduling, not wall clock).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _timeout: Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(crate::rt::condvar_wait(self.id, guard.lock.id, true))
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        crate::rt::condvar_notify(self.id, false);
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        crate::rt::condvar_notify(self.id, true);
    }
}
