//! Offline vendored stand-in for `parking_lot`.
//!
//! Provides `Mutex`/`MutexGuard`/`Condvar` with parking_lot's ergonomics
//! (no poisoning, `lock()` returns the guard directly, `Condvar::wait_for`
//! takes the guard by `&mut`), implemented on top of `std::sync`. Only
//! the slice of the API this workspace uses is provided. Poisoning from a
//! panicking holder is deliberately ignored (`PoisonError::into_inner`),
//! matching parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (no poisoning; `lock` returns the guard
/// directly).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard
    // by value; it is `None` only inside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (statically exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by wait_for")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by wait_for")
    }
}

/// Whether a timed condition-variable wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on the condvar, releasing the guarded mutex while asleep,
    /// for at most `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard reused inside wait_for");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks on the condvar until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard reused inside wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(10));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
