//! Offline vendored stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; it is
//! implemented over `std::thread::scope` (stabilized long after
//! crossbeam popularized the pattern). Semantics match the subset used
//! here: `scope` returns `Err` with the panic payload if any *unjoined*
//! spawned thread panicked (std's scope re-raises those panics, which we
//! catch), explicitly joined panics are the caller's to handle, and
//! spawn closures receive a `&Scope` that permits nested spawns.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    /// A scope handle; `spawn` borrows from it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result; `Err` holds the
        /// panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives a
        /// scope handle for nested spawns (often ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || f(&Scope { inner: inner_scope }));
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can
    /// be spawned; all spawned threads are joined before `scope`
    /// returns. Returns `Err` when a spawned thread panicked and the
    /// panic was not consumed through an explicit `join`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_and_collect() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let out = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn unjoined_panic_fails_the_scope() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_consumed() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        });
        assert!(r.is_ok());
    }

    #[test]
    fn nested_spawn() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
