//! Offline vendored stand-in for `proptest`.
//!
//! Reproduces the subset of proptest this workspace's property tests
//! use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any::<T>()`,
//! `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and seed
//!   (cases are deterministic per index), not a minimized input.
//! * `prop_assert!` maps to `assert!` (panic, not `Err` return).
//! * Case generation is seeded deterministically, so runs are
//!   reproducible without a persistence file.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
pub use rand::Rng as __Rng;

/// The RNG driving test-case generation.
pub type TestRng = SmallRng;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, which returns the strategy to
    /// draw the final value from.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<u64>(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen::<u64>(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen::<f64>(rng)
    }
}

/// Strategy drawing unconstrained values of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use super::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Seed for case `i`: deterministic, spread by a 64-bit mix.
#[doc(hidden)]
pub fn __case_seed(case: u32) -> u64 {
    0x5EED_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs the body of one generated property test over all cases.
#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, mut body: F) {
    for case in 0..config.cases {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(__case_seed(case));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest stand-in: failing case {case} of {} (seed {:#x}); no shrinking",
                config.cases,
                __case_seed(case)
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// A failing-condition assertion (maps to `assert!`; panics rather than
/// returning `Err` as upstream does).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block: an optional config header followed by test
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::__run_cases(config, |__proptest_rng| {
                $( let $arg = $crate::Strategy::generate(&($strat), __proptest_rng); )+
                $body
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(1);
        let s = 3usize..10;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(2);
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, 0..n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert!(v.len() < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn tuples_and_any(pair in (0u32..4, 0u32..4), seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(pair.0 < 4);
        }
    }
}
