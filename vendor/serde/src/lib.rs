//! Offline vendored stand-in for `serde`.
//!
//! Real serde abstracts over data formats; this workspace only ever
//! serializes to and from JSON (via `serde_json`), so the stand-in
//! collapses the data model to a single JSON-like [`Value`] tree:
//! `Serialize` renders into a `Value`, `Deserialize` rebuilds from one.
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros (from the sibling `serde_derive` stand-in) covering the
//! shapes this workspace uses: structs with named fields and fieldless
//! enums.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the stand-in's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as f64, like JavaScript; integers up to 2^53
    /// round-trip exactly, far beyond anything this workspace records).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (sorted keys for deterministic output).
    Object(BTreeMap<String, Value>),
}

/// Error produced when rebuilding a typed value from a [`Value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::msg(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Number(3.0)), Ok(Some(3)));
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u64, 2, 3];
        let val = v.to_value();
        assert_eq!(Vec::<u64>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn type_errors_reported() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(String::from_value(&Value::Number(1.0)).is_err());
    }
}
