//! Offline vendored stand-in for `rayon`.
//!
//! This workspace uses exactly one rayon pattern — `par_chunks` over a
//! slice followed by `fold(..).reduce(..)` or `for_each(..)` — in the
//! parallel CSR builder. The stand-in reproduces that API with a simple
//! static partition over `std::thread::scope` workers (one per available
//! core, capped by the chunk count). Rayon's work-stealing scheduler is
//! overkill for the regular, equal-size chunks the CSR builder feeds
//! it; a block partition has the same asymptotics.
//!
//! `fold` keeps rayon's shape: it produces one accumulator *per worker*
//! (not one global), and `reduce` combines them. `for_each` runs chunks
//! on all workers.

#![warn(missing_docs)]

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use super::ParallelSlice;
}

/// How many worker threads a parallel call uses.
fn worker_count(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// Slice extension providing `par_chunks`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized chunks (last may be
    /// shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel chunk iterator (the only parallel iterator this stand-in
/// provides).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    fn chunk_count(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size).max(1)
    }

    /// Runs `op` on every chunk, in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        let workers = worker_count(self.chunk_count());
        if workers == 1 {
            for chunk in self.slice.chunks(self.chunk_size) {
                op(chunk);
            }
            return;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let start = i * self.chunk_size;
                    if start >= self.slice.len() {
                        break;
                    }
                    let end = (start + self.chunk_size).min(self.slice.len());
                    op(&self.slice[start..end]);
                });
            }
        });
    }

    /// Folds chunks into per-worker accumulators (rayon's shape: `fold`
    /// yields one accumulator per worker, which `reduce` then combines).
    pub fn fold<Acc, Id, F>(self, identity: Id, fold_op: F) -> FoldResult<Acc>
    where
        Acc: Send,
        Id: Fn() -> Acc + Sync,
        F: Fn(Acc, &'a [T]) -> Acc + Sync,
    {
        let workers = worker_count(self.chunk_count());
        if workers == 1 {
            let mut acc = identity();
            for chunk in self.slice.chunks(self.chunk_size) {
                acc = fold_op(acc, chunk);
            }
            return FoldResult { accs: vec![acc] };
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let accs = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut acc = identity();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let start = i * self.chunk_size;
                            if start >= self.slice.len() {
                                break;
                            }
                            let end = (start + self.chunk_size).min(self.slice.len());
                            acc = fold_op(acc, &self.slice[start..end]);
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in worker panicked"))
                .collect()
        });
        FoldResult { accs }
    }
}

/// The per-worker accumulators produced by [`ParChunks::fold`].
pub struct FoldResult<Acc> {
    accs: Vec<Acc>,
}

impl<Acc> FoldResult<Acc> {
    /// Combines the per-worker accumulators into one value.
    pub fn reduce<Id, R>(self, identity: Id, reduce_op: R) -> Acc
    where
        Id: Fn() -> Acc,
        R: Fn(Acc, Acc) -> Acc,
    {
        self.accs.into_iter().fold(identity(), reduce_op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_sums() {
        let data: Vec<u64> = (1..=10_000).collect();
        let total = data
            .par_chunks(777)
            .fold(|| 0u64, |acc, chunk| acc + chunk.iter().sum::<u64>())
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn for_each_visits_every_element_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let data: Vec<u64> = (1..=5_000).collect();
        let sum = AtomicU64::new(0);
        data.par_chunks(64).for_each(|chunk| {
            sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5_000 * 5_001 / 2);
    }

    #[test]
    fn empty_slice() {
        let data: Vec<u64> = Vec::new();
        let total = data
            .par_chunks(8)
            .fold(|| 1u64, |acc, _| acc + 1)
            .reduce(|| 0, |a, b| a + b);
        // One worker, identity only.
        assert_eq!(total, 1);
    }
}
