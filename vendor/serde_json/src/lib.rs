//! Offline vendored stand-in for `serde_json`.
//!
//! Writes and parses JSON over the vendored `serde::Value` model.
//! Output is deterministic (object keys are sorted by the underlying
//! `BTreeMap`); numbers are emitted with Rust's shortest-roundtrip float
//! formatting, with integral values printed without a fractional part.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's `null`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(Error(format!("expected , or ] but got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_at(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    other => return Err(Error(format!("expected , or }} but got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Number),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        // Surrogate pairs are not handled; this workspace
                        // never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error(format!("invalid number at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn parses_nested_objects() {
        let v = parse_value(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        match v {
            Value::Object(m) => {
                assert!(m.contains_key("a"));
                assert!(m.contains_key("c"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
