//! Remote client: start an in-process server, then drive it purely
//! over TCP — register a graph, submit jobs (watching the result cache
//! kick in), cancel one, and scrape the Prometheus metrics page.
//!
//! ```text
//! cargo run --release --example remote_client
//! ```
//!
//! Everything below the `Server::start` line is exactly what a client
//! in another process (or on another machine) would do; the in-process
//! server just makes the example self-contained. To serve externally,
//! set `ST_LISTEN_ADDR` (e.g. `0.0.0.0:7077`) and build the config
//! with `ServerConfig::from_env()`.

use std::sync::Arc;
use std::time::Instant;

use bader_cong_spanning::prelude::*;

fn main() {
    // A service with a small sharded pool, wrapped by the TCP
    // front-end on an ephemeral loopback port.
    let service = Arc::new(
        Service::builder()
            .teams([4, 2, 2])
            .queue_capacity(64)
            .result_cache_capacity(32)
            .build(),
    );
    let server = Server::start(Arc::clone(&service), ServerConfig::default())
        .expect("binding a loopback port");
    println!("server listening on {}", server.local_addr());

    // --- Everything below is pure client code. ---
    let mut client = Client::connect(server.local_addr()).expect("connecting");

    // Upload a graph once; afterwards every job names it by id.
    let n = 200_000;
    let g = gen::random_gnm(n, 3 * n / 2, 42);
    let remote = client.register(&g).expect("registering the graph");
    println!(
        "registered {} vertices / {} edges as id {} v{}",
        g.num_vertices(),
        g.num_edges(),
        remote.id,
        remote.version
    );

    // Cold: the job queues, gets a team, runs the traversal.
    let started = Instant::now();
    let reply = client.submit(SubmitRequest::new(remote)).expect("submit");
    let forest = client.wait(reply.ticket).expect("wait");
    println!(
        "cold run: {} trees in {:.2?} (cached: {})",
        forest.num_trees(),
        started.elapsed(),
        reply.cached
    );
    assert!(forest.is_valid_for(&g));

    // Hot: the identical spec is answered from the result cache —
    // no queue, no team, just a lookup and a frame.
    let started = Instant::now();
    let reply = client.submit(SubmitRequest::new(remote)).expect("submit");
    let forest = client.wait(reply.ticket).expect("wait");
    println!(
        "hot run:  {} trees in {:.2?} (cached: {})",
        forest.num_trees(),
        started.elapsed(),
        reply.cached
    );

    // Cancellation propagates remotely: fire the token by ticket.
    let doomed = client
        .submit(SubmitRequest::new(remote).seed(7))
        .expect("submit");
    client.cancel(doomed.ticket).expect("cancel");
    match client.wait(doomed.ticket) {
        Err(e) => println!("cancelled job resolved as: {e}"),
        Ok(_) => println!("cancelled job finished first (benign race)"),
    }

    // The gauges behind all of this, in Prometheus text format.
    let page = client.metrics().expect("metrics");
    let interesting = page
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("st_service_jobs_")
                || l.starts_with("st_service_result_cache_")
                || l.starts_with("st_service_queue_depth ")
        })
        .collect::<Vec<_>>();
    println!("--- metrics ---");
    for line in interesting {
        println!("{line}");
    }

    server.shutdown();
    println!("server drained cleanly");
}
