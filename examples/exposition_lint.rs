//! Exposition lint: drive a real workload through the service, render
//! the Prometheus page, and verify it is grammatically valid with
//! internally consistent histograms.
//!
//! ```text
//! cargo run --release --example exposition_lint
//! ```
//!
//! This is the metrics plane's end-to-end check (CI runs it in the
//! server-smoke job): every family the service exports is parsed back
//! with [`lint_exposition`], which enforces the text-format grammar
//! plus the histogram invariants — strictly increasing `le` bounds,
//! monotone cumulative counts, `+Inf == _count`, `_sum` present — and
//! the job counts baked into the page are reconciled against the
//! workload we just ran.

use std::sync::Arc;
use std::time::Duration;

use bader_cong_spanning::prelude::*;

fn main() {
    let svc = Service::builder()
        .teams([2, 1])
        .queue_capacity(32)
        .slow_job_threshold(Duration::from_millis(1))
        .build();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(64, 64)));

    // A mixed workload: every priority lane, two algorithms, a cache
    // hit, and a deadline miss — so the page has non-trivial series to
    // lint in every family.
    let mut executed = 0u64;
    for (i, (algo, prio)) in [
        (AlgorithmId::BaderCong, Priority::High),
        (AlgorithmId::BaderCong, Priority::Normal),
        (AlgorithmId::Sv, Priority::Low),
        (AlgorithmId::Hcs, Priority::Normal),
    ]
    .into_iter()
    .enumerate()
    {
        // Distinct seeds keep the cache out of this loop (priority is
        // not part of the cache key; seed and algorithm are).
        let sub = svc
            .submit_spec(
                JobSpec::new(gref.id)
                    .algorithm(algo)
                    .priority(prio)
                    .seed(100 + i as u64),
            )
            .expect("service is open");
        sub.handle.wait().expect("no deadline, no cancel");
        executed += 1;
    }
    // Identical spec: served from the result cache.
    let hit = svc
        .submit_spec(JobSpec::new(gref.id).algorithm(AlgorithmId::Hcs).seed(103))
        .expect("service is open");
    assert!(hit.cached, "repeat spec must hit the cache");
    // Expired at submission: a deadline miss for the SLO series.
    let missed = svc
        .submit_spec(JobSpec::new(gref.id).seed(7).deadline(Duration::ZERO))
        .expect("submission itself succeeds");
    assert!(missed.handle.wait().is_err(), "deadline already expired");

    let page = svc.render_metrics();
    let samples = match lint_exposition(&page) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--- page ---\n{page}");
            panic!("exposition lint failed: {e}");
        }
    };
    println!(
        "lint OK: {} samples across {} lines",
        samples.len(),
        page.lines().count()
    );

    // Reconcile the histogram counts against the workload: every
    // executed completion must appear in exactly one lane wall series.
    let wall_count: f64 = samples
        .iter()
        .filter(|(name, _)| name.starts_with("st_service_job_wall_seconds_count"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        wall_count as u64, executed,
        "wall-histogram _count must equal executed completions"
    );
    let completed = samples
        .get("st_service_jobs_finished_total{outcome=\"completed\"}")
        .copied()
        .unwrap_or(f64::NAN);
    assert_eq!(
        completed as u64, executed,
        "completed counter must match the workload"
    );
    let cached = samples
        .get("st_service_cached_wall_seconds_count")
        .copied()
        .unwrap_or(f64::NAN);
    assert_eq!(cached as u64, 1, "exactly one cache hit was served");
    let miss_ratio = samples
        .get("st_service_deadline_miss_ratio")
        .copied()
        .unwrap_or(f64::NAN);
    assert!(
        miss_ratio > 0.0 && miss_ratio < 1.0,
        "one deadline miss out of several jobs, got {miss_ratio}"
    );
    println!("reconciled: {executed} executed, 1 cached, deadline-miss ratio {miss_ratio:.3}");

    // The journal saw the whole story.
    let journal = svc.telemetry().journal();
    assert!(journal.events().len() >= 4 * executed as usize);
    let slow = svc.telemetry().slow_jobs();
    println!(
        "journal holds {} events; {} slow-job reports past the 1ms threshold",
        journal.events().len(),
        slow.len()
    );
    svc.shutdown();
    println!("exposition lint passed");
}
