//! Algorithm shootout: every implementation against every input family.
//!
//! Runs the sequential baselines (BFS, DFS), the Bader–Cong algorithm,
//! both SV grafting variants, and HCS across all ten Fig. 4 workloads,
//! cross-validating that every algorithm agrees on the component
//! structure, and printing a compact timing matrix for the host.
//!
//! ```text
//! cargo run --release --example algorithm_shootout [log2_n] [p]
//! ```

use bader_cong_spanning::prelude::*;
use st_bench::workloads::Workload;
use st_core::hcs::Hcs;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let n = 1usize << scale;

    println!("n ≈ 2^{scale}, p = {p}; times in milliseconds\n");
    println!(
        "{:<15} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>6}",
        "workload", "n", "m", "bfs", "dfs", "bc", "sv", "sv-lock", "hcs", "comps"
    );

    // One persistent team serves every parallel algorithm and workload:
    // threads spawn once, scratch is recycled (the engine/job API).
    let mut engine = Engine::new(p);
    let bc = BaderCong::with_defaults();
    let sv_election = sv::Sv::new(SvConfig::default());
    let sv_lock = sv::Sv::new(SvConfig {
        variant: GraftVariant::Lock,
        ..SvConfig::default()
    });

    for w in Workload::fig4_panels() {
        let g = w.build(n, 42);
        let time = |f: &dyn Fn() -> SpanningForest| {
            let s = std::time::Instant::now();
            let forest = f();
            let ms = s.elapsed().as_secs_f64() * 1e3;
            assert!(
                is_spanning_forest(&g, &forest.parents),
                "{} produced an invalid forest",
                w.id()
            );
            (ms, forest.num_trees())
        };
        let mut time_job = |algo: &dyn SpanningAlgorithm| {
            let s = std::time::Instant::now();
            let forest = engine
                .job(&g)
                .algorithm(algo)
                .run()
                .expect("no cancel token attached");
            let ms = s.elapsed().as_secs_f64() * 1e3;
            assert!(
                is_spanning_forest(&g, &forest.parents),
                "{} produced an invalid forest",
                w.id()
            );
            (ms, forest.num_trees())
        };

        let (bfs_ms, comps) = time(&|| seq::bfs_forest(&g));
        let (dfs_ms, c2) = time(&|| seq::dfs_forest(&g));
        let (bc_ms, c3) = time_job(&bc);
        let (sv_ms, c4) = time_job(&sv_election);
        let (svl_ms, c5) = time_job(&sv_lock);
        let (hcs_ms, c6) = time_job(&Hcs);

        // Every algorithm must agree on the number of components.
        for (name, c) in [
            ("dfs", c2),
            ("bc", c3),
            ("sv", c4),
            ("sv-lock", c5),
            ("hcs", c6),
        ] {
            assert_eq!(c, comps, "{name} disagrees on components for {}", w.id());
        }

        println!(
            "{:<15} {:>9} {:>10} | {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} | {:>6}",
            w.id(),
            g.num_vertices(),
            g.num_edges(),
            bfs_ms,
            dfs_ms,
            bc_ms,
            sv_ms,
            svl_ms,
            hcs_ms,
            comps
        );
    }

    println!("\nAll algorithms validated and agree on component structure ✓");
    println!("(Wall-clock numbers on this host; figure shapes come from the model");
    println!(" executor — see `cargo run -p st-bench --release --bin figures`.)");
}
