//! Minimum spanning forest — the paper's future-work extension.
//!
//! Weighted mesh and random graphs, parallel Borůvka vs sequential
//! Kruskal, with cross-validation of the forest weights.
//!
//! ```text
//! cargo run --release --example minimum_spanning_forest
//! ```

use bader_cong_spanning::prelude::*;
use st_graph::WeightedGraph;

fn main() {
    let p = 4;

    for (name, g) in [
        (
            "random graph (n = 50k, m = 100k)",
            gen::random_gnm(50_000, 100_000, 3),
        ),
        ("2D torus 224x224", gen::torus2d(224, 224)),
        ("AD3 geometric (n = 50k)", gen::ad3(50_000, 3)),
    ] {
        // Random integer weights; a geometric application would use
        // distances instead.
        let wg = WeightedGraph::with_random_weights(&g, 1_000_000, 7);
        println!(
            "\n== {name}: {} vertices, {} weighted edges",
            wg.num_vertices(),
            wg.num_edges()
        );

        let s = std::time::Instant::now();
        let k = mst::kruskal(&wg);
        let k_ms = s.elapsed().as_secs_f64() * 1e3;

        let s = std::time::Instant::now();
        let b = mst::boruvka(&wg, p);
        let b_ms = s.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            k.total_weight, b.total_weight,
            "Kruskal and Boruvka must agree on the MSF weight"
        );
        println!(
            "   kruskal: {:>8.1} ms | boruvka(p={p}): {:>8.1} ms in {} iterations",
            k_ms, b_ms, b.iterations
        );
        println!(
            "   forest: {} edges, total weight {} (verified equal) ✓",
            b.tree_edges.len(),
            b.total_weight
        );

        // The Boruvka forest is also a valid spanning forest of the
        // topology — reuse the spanning-tree machinery to check.
        let parents = st_core::orient::orient_forest(wg.num_vertices(), &b.tree_edges, p);
        assert!(is_spanning_forest(wg.topology(), &parents));
        println!("   orientation + spanning-forest validation ✓");
    }
}
