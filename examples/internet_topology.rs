//! Internet-topology scenario: spanning trees over geographic graphs.
//!
//! The paper motivates geographic graphs with "research on properties of
//! wide-area networks [that] model the structure of the Internet"
//! (Calvert–Doar–Zegura). This example plays a network operator
//! computing a broadcast/spanning backbone over both geographic modes,
//! compares labeling-sensitive SV against the labeling-oblivious new
//! algorithm, and reports tree quality (depth) per algorithm.
//!
//! ```text
//! cargo run --release --example internet_topology
//! ```

use bader_cong_spanning::prelude::*;
use st_graph::validate::forest_depths;

fn analyze(name: &str, g: &CsrGraph, engine: &mut Engine) {
    println!(
        "\n== {name}: {} routers, {} links, {:.2} mean degree",
        g.num_vertices(),
        g.num_edges(),
        g.degree_stats().mean
    );

    // The new algorithm.
    let started = std::time::Instant::now();
    let forest = engine.job(g).run().expect("no cancel token attached");
    let bc_time = started.elapsed();
    assert!(is_spanning_forest(g, &forest.parents));

    // SV for comparison, on the same persistent team.
    let sv_algo = sv::Sv::new(SvConfig::default());
    let started = std::time::Instant::now();
    let sv_forest = engine.run(&sv_algo, g);
    let sv_time = started.elapsed();
    assert!(is_spanning_forest(g, &sv_forest.parents));

    // Both must agree on the component structure.
    assert_eq!(forest.num_trees(), sv_forest.num_trees());

    let depth = |parents: &[VertexId]| forest_depths(parents).into_iter().max().unwrap_or(0);
    println!(
        "  bader-cong: {:>8.1} ms, {} trees, max depth {:>4}, {} steals",
        bc_time.as_secs_f64() * 1e3,
        forest.num_trees(),
        depth(&forest.parents),
        forest.stats.steals
    );
    println!(
        "  sv:         {:>8.1} ms, {} trees, max depth {:>4}, {} iterations",
        sv_time.as_secs_f64() * 1e3,
        sv_forest.num_trees(),
        depth(&sv_forest.parents),
        sv_forest.stats.iterations
    );
}

fn main() {
    let p = 4;
    // One persistent team for the whole scenario.
    let mut engine = Engine::new(p);

    // Flat mode: one administrative level, distance-dependent links.
    let flat = gen::geographic_flat(
        60_000,
        gen::GeoFlatParams::with_target_degree(60_000, 4.0),
        7,
    );
    analyze("geographic, flat mode", &flat, &mut engine);

    // Hierarchical mode: backbone -> domains -> subdomains, like
    // transit and stub ASes.
    let params = gen::GeoHierParams::with_approx_n(60_000);
    let hier = gen::geographic_hier(params, 7);
    analyze("geographic, hierarchical mode", &hier, &mut engine);

    // The labeling experiment on the hierarchical graph: random vertex
    // ids model routers numbered in arrival order rather than by
    // topology. SV's iteration count reacts; the new algorithm does not
    // care.
    let perm = random_permutation(hier.num_vertices(), 99);
    let shuffled = relabel(&hier, &perm);
    println!("\n== same hierarchical graph, randomly relabeled");
    let sv_algo = sv::Sv::new(SvConfig::default());
    let sv_row = engine.run(&sv_algo, &shuffled);
    println!(
        "  sv iterations: {} (vs {} with construction order)",
        sv_row.stats.iterations,
        engine.run(&sv_algo, &hier).stats.iterations
    );
    let f = engine
        .job(&shuffled)
        .run()
        .expect("no cancel token attached");
    assert!(is_spanning_forest(&shuffled, &f.parents));
    println!("  bader-cong: unaffected by labeling (validated)");
}
