//! Quickstart: build a graph, compute a parallel spanning forest,
//! verify it, and look at the execution statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bader_cong_spanning::prelude::*;

fn main() {
    // The paper's headline input (Fig. 3): a random graph with
    // m = 1.5 n edges. 100k vertices keeps this instant.
    let n = 100_000;
    let g = gen::random_gnm(n, 3 * n / 2, 42);
    println!(
        "graph: {} vertices, {} edges, mean degree {:.2}",
        g.num_vertices(),
        g.num_edges(),
        g.degree_stats().mean
    );

    // The Bader-Cong algorithm: stub spanning tree + work-stealing
    // traversal, here with 4 processors. The engine owns a persistent
    // team plus reusable scratch; `job(&g)` phrases one run as a job
    // (attach `.algorithm(..)`, `.cancel(token)` as needed).
    let p = 4;
    let mut engine = Engine::new(p);
    let started = std::time::Instant::now();
    let forest = engine.job(&g).run().expect("no cancel token attached");
    let elapsed = started.elapsed();

    // Always verify: the crate ships the oracle the tests use.
    assert!(is_spanning_forest(&g, &forest.parents));
    println!(
        "spanning forest: {} trees, {} tree edges, valid ✓ ({:.1} ms with p = {p})",
        forest.num_trees(),
        forest.num_tree_edges(),
        elapsed.as_secs_f64() * 1e3
    );

    // The statistics the paper reports on.
    println!(
        "stats: {} vertices colored concurrently by >1 processor (paper: <10 per millions), \
         {} steals moving {} queue items, load imbalance {:.2}",
        forest.stats.multi_colored,
        forest.stats.steals,
        forest.stats.stolen_items,
        forest.stats.load_imbalance()
    );

    // The same parent array answers connectivity questions.
    let cc = components_from_forest(&forest.parents);
    println!(
        "connected components: {} (largest has {} vertices)",
        cc.count,
        cc.sizes().into_iter().max().unwrap_or(0)
    );

    // Compare against the best sequential algorithm (BFS), as the paper
    // does.
    let started = std::time::Instant::now();
    let seq_forest = seq::bfs_forest(&g);
    println!(
        "sequential BFS: {} trees in {:.1} ms",
        seq_forest.num_trees(),
        started.elapsed().as_secs_f64() * 1e3
    );
}
