//! Network reliability: biconnectivity on Internet-like topologies.
//!
//! The paper's opening motivation: the spanning tree is "an important
//! building block for many graph algorithms, for example, biconnected
//! components". This example runs the full pipeline — parallel spanning
//! forest (Bader–Cong) → Tarjan–Vishkin auxiliary graph → parallel
//! connectivity (SV) — to find the single points of failure in
//! geographic network models: bridge links and articulation routers.
//!
//! ```text
//! cargo run --release --example network_reliability
//! ```

use bader_cong_spanning::prelude::*;
use st_core::biconnected::biconnected_components;

fn analyze(name: &str, g: &CsrGraph, p: usize) {
    let started = std::time::Instant::now();
    let bc = biconnected_components(g, p);
    let ms = started.elapsed().as_secs_f64() * 1e3;

    let n = g.num_vertices();
    println!("\n== {name}");
    println!("   {} routers, {} links", n, g.num_edges());
    println!(
        "   {} biconnected components, {} bridge links, {} articulation routers ({:.1} ms, p = {p})",
        bc.num_blocks,
        bc.bridges.len(),
        bc.articulation_points.len(),
        ms
    );
    let frac_bridges = 100.0 * bc.bridges.len() as f64 / g.num_edges().max(1) as f64;
    let frac_arts = 100.0 * bc.articulation_points.len() as f64 / n.max(1) as f64;
    println!(
        "   exposure: {frac_bridges:.1}% of links are single points of failure; \
         {frac_arts:.1}% of routers are cut vertices"
    );
}

fn main() {
    let p = 4;

    // Flat geographic model at two densities: sparser networks have
    // far more single points of failure.
    for target_degree in [3.0, 6.0] {
        let g = gen::geographic_flat(
            30_000,
            gen::GeoFlatParams::with_target_degree(30_000, target_degree),
            5,
        );
        analyze(
            &format!("flat geographic network, mean degree ≈ {target_degree}"),
            &g,
            p,
        );
    }

    // Hierarchical model: the tree-like transit structure makes almost
    // every inter-level link a bridge.
    let g = gen::geographic_hier(gen::GeoHierParams::with_approx_n(30_000), 5);
    analyze("hierarchical geographic network", &g, p);

    // A torus has no single point of failure at all.
    analyze(
        "2D torus (fully redundant fabric)",
        &gen::torus2d(100, 100),
        p,
    );
}
