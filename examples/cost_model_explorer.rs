//! Cost-model explorer: speedup curves and break-even points under the
//! Helman–JáJá executor.
//!
//! Answers "at what p does parallel win, and how efficiently?" for each
//! paper workload, and shows how machine parameters (memory latency,
//! bus contention, barrier cost) move the curves — the design space the
//! paper's §3 analysis lives in.
//!
//! ```text
//! cargo run --release --example cost_model_explorer [log2_n]
//! ```

use st_bench::workloads::Workload;
use st_model::predict::{speedup_curve, SimAlgorithm};
use st_model::MachineProfile;

const PS: [usize; 6] = [1, 2, 4, 8, 12, 14];

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << scale;
    let machine = MachineProfile::e4500();

    println!("E4500-like profile, n ≈ 2^{scale}; speedups vs sequential BFS\n");
    println!(
        "{:<15} {:>10} | {:>24} | {:>24} | {:>6}",
        "workload", "algorithm", "speedup @ p=2/4/8", "efficiency @ p=2/4/8", "even@p"
    );
    for w in [
        Workload::RandomM15,
        Workload::TorusRowMajor,
        Workload::Mesh2D60,
        Workload::Ad3,
        Workload::ChainSeq,
    ] {
        let g = w.build(n, 42);
        for (name, algo) in [
            ("bader-cong", SimAlgorithm::BaderCong),
            ("sv", SimAlgorithm::Sv),
        ] {
            let c = speedup_curve(&g, algo, &PS, &machine);
            let s = |p| c.speedup_at(p).unwrap_or(f64::NAN);
            let e = |p| c.efficiency_at(p).unwrap_or(f64::NAN);
            let even = c
                .break_even_p()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "never".into());
            println!(
                "{:<15} {:>10} | {:>7.2} {:>7.2} {:>7.2}x | {:>7.2} {:>7.2} {:>7.2} | {:>6}",
                w.id(),
                name,
                s(2),
                s(4),
                s(8),
                e(2),
                e(4),
                e(8),
                even
            );
        }
    }

    // Machine sensitivity: what if memory were faster, or the bus less
    // contended? (The knobs DESIGN.md §4 calibrates.)
    println!("\nMachine sensitivity — bader-cong speedup at p = 8 on random m = 1.5n:");
    let g = Workload::RandomM15.build(n, 42);
    for (label, m) in [
        ("E4500 default".to_string(), MachineProfile::e4500()),
        (
            "no bus contention".to_string(),
            MachineProfile {
                mem_contention: 0.0,
                ..MachineProfile::e4500()
            },
        ),
        (
            "2x faster memory".to_string(),
            MachineProfile {
                mem_ns: MachineProfile::e4500().mem_ns / 2.0,
                ..MachineProfile::e4500()
            },
        ),
        (
            "10x barrier cost".to_string(),
            MachineProfile {
                barrier_base_ns: MachineProfile::e4500().barrier_base_ns * 10.0,
                barrier_per_proc_ns: MachineProfile::e4500().barrier_per_proc_ns * 10.0,
                ..MachineProfile::e4500()
            },
        ),
    ] {
        let c = speedup_curve(&g, SimAlgorithm::BaderCong, &[8], &m);
        println!("  {:<20} {:>6.2}x", label, c.speedup_at(8).unwrap());
    }
}
