//! Mesh scenario: connectivity and spanning forests of damaged meshes.
//!
//! "Computational science applications for physics-based simulations and
//! computer vision commonly use mesh-based graphs" (§4). This example
//! plays a simulation code whose 2D/3D meshes have randomly failed
//! links (the paper's 2D60 / 3D40 families): it computes the connected
//! components (how did the domain fragment?), a spanning forest per
//! fragment (communication trees), and shows the degree-2 preprocessing
//! paying off on corridor-like fragments.
//!
//! ```text
//! cargo run --release --example mesh_physics
//! ```

use bader_cong_spanning::prelude::*;
use st_graph::preprocess::eliminate_degree2;

fn main() {
    let p = 4;
    // One persistent team across both mesh families.
    let mut engine = Engine::new(p);

    for (name, g) in [
        (
            "2D60 (256x256 mesh, 60% links alive)",
            gen::mesh2d_p(256, 256, 0.6, 11),
        ),
        (
            "3D40 (40x40x40 mesh, 40% links alive)",
            gen::mesh3d_p(40, 40, 40, 0.4, 11),
        ),
    ] {
        println!("\n== {name}");
        println!(
            "   {} cells, {} intact links",
            g.num_vertices(),
            g.num_edges()
        );

        // How did the domain fragment?
        let forest = engine.job(&g).run().expect("no cancel token attached");
        assert!(is_spanning_forest(&g, &forest.parents));
        let cc = components_from_forest(&forest.parents);
        let mut sizes = cc.sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "   fragments: {} — largest {:.1}% of cells, next {:?}",
            cc.count,
            100.0 * sizes[0] as f64 / g.num_vertices() as f64,
            &sizes[1..sizes.len().min(6)]
        );

        // Communication trees: one root per fragment is already what the
        // spanning forest encodes.
        println!(
            "   spanning forest: {} tree edges across {} trees (stats: {} steals, imbalance {:.2})",
            forest.num_tree_edges(),
            forest.num_trees(),
            forest.stats.steals,
            forest.stats.load_imbalance()
        );

        // Degree-2 preprocessing: damaged meshes grow corridors of
        // degree-2 cells that the §2 optimization removes up front.
        let red = eliminate_degree2(&g);
        let stats = red.stats();
        println!(
            "   degree-2 elimination: {} cells removed in {} chains ({:.1}% of the graph)",
            stats.eliminated,
            stats.chains,
            100.0 * stats.eliminated as f64 / g.num_vertices() as f64
        );
        let cfg = Config {
            deg2_preprocess: true,
            ..Config::default()
        };
        let pre = BaderCong::new(cfg);
        let f2 = engine
            .job(&g)
            .algorithm(&pre)
            .run()
            .expect("no cancel token attached");
        assert!(is_spanning_forest(&g, &f2.parents));
        assert_eq!(f2.num_trees(), forest.num_trees());
        println!("   preprocessed run agrees on the fragment structure ✓");
    }
}
