//! Telemetry server: stand up the TCP front-end, run a small workload
//! over the binary protocol, then scrape the *same listener* over
//! plain HTTP — `/healthz`, `/metrics` (validated with
//! [`lint_exposition`]), and the trace-filtered `/debug/journal`.
//!
//! ```text
//! cargo run --release --example telemetry_server
//! cargo run --release --example telemetry_server -- --listen 127.0.0.1:7070 --hold-ms 30000
//! ```
//!
//! With no arguments the example scrapes itself and exits — that is
//! what CI's examples job runs. `--listen` pins the port and
//! `--hold-ms` keeps the server up after the self-check so an external
//! scraper (curl, Prometheus) can hit the endpoints; CI's server-smoke
//! job uses exactly that to curl the observability plane from a shell.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use bader_cong_spanning::prelude::*;

/// One HTTP/1.1 GET over a raw socket; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

fn main() {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut hold_ms: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next().expect("--listen needs an address"),
            "--hold-ms" => {
                hold_ms = args
                    .next()
                    .expect("--hold-ms needs a value")
                    .parse()
                    .expect("--hold-ms must be an integer")
            }
            other => panic!("unknown option {other}"),
        }
    }

    let service = Arc::new(
        Service::builder()
            .teams([2, 2])
            .queue_capacity(32)
            .result_cache_capacity(16)
            .build(),
    );
    let config = ServerConfig {
        addr: listen.parse().expect("--listen must be host:port"),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), config).expect("bind listen address");
    let addr = server.local_addr();
    println!("serving on {addr} (binary protocol + HTTP observability plane)");

    // A small workload over the binary protocol so every telemetry
    // surface has data: three executions and one cache hit.
    let mut client = Client::connect(addr).expect("loopback connect");
    let remote = client.register(&gen::torus2d(64, 64)).expect("register");
    let mut last_trace = 0u64;
    for seed in 0..3u64 {
        let reply = client
            .submit(SubmitRequest::new(remote).seed(seed))
            .expect("submit");
        client.wait(reply.ticket).expect("wait");
        last_trace = reply.trace;
    }
    let hit = client
        .submit(SubmitRequest::new(remote).seed(2))
        .expect("submit repeat");
    assert!(hit.cached, "repeat spec is served from the result cache");

    // Scrape ourselves over HTTP — the same checks CI runs with curl.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    let (status, page) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let samples = lint_exposition(&page).expect("scraped page passes the exposition lint");
    let wall_count: f64 = samples
        .iter()
        .filter(|(k, _)| k.starts_with("st_service_job_wall_seconds_count"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        wall_count, 3.0,
        "three executed jobs in the wall histograms"
    );
    println!("/metrics: {} samples pass the lint", samples.len());

    let (status, jsonl) = http_get(addr, &format!("/debug/journal?trace={last_trace:016x}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        jsonl.lines().count(),
        5,
        "the last execution's full lifecycle is journaled"
    );
    println!("/debug/journal: trace {last_trace:016x} shows its full lifecycle");

    if hold_ms > 0 {
        println!("holding the listener open for {hold_ms}ms for external scrapers");
        std::thread::sleep(std::time::Duration::from_millis(hold_ms));
    }
    server.shutdown();
    println!("telemetry server drained cleanly");
}
